(** Randomized schedule exploration (fuzzing) beyond the model
    checker's horizon.

    [lib/mc] certifies small universes exhaustively, but its state
    spaces drown a few processes past depth ~11 — every claim at
    [n >= 5] would otherwise rest on hand-picked seeds. This module
    {e samples} the same schedule space instead of enumerating it:

    - a {b PCT sampler} (probabilistic concurrency testing, after
      Burckhardt et al.): per-process random priorities with [d - 1]
      priority-change points. For a bug of preemption depth [d] in a
      program of [n] processes and at most [k] steps, one PCT run
      finds it with probability at least [1 / (n * k^(d-1))] — a
      provable detection bound exhaustive search cannot offer at this
      scale. A uniform-random baseline quantifies what the priority
      discipline buys.
    - a {b swarm mode} that resamples the menu family, the per-run
      loss budget, the detector stabilization step and the sampler
      itself once per batch, so no single configuration starves the
      others.
    - a {b coverage tracker}: distinct canonical states (the model
      checker's own state hash), decision depths, quorum-history
      shapes and fault-verdict signatures, accumulated per batch into
      a saturation curve — "another 10k runs found nothing new" is a
      measurable claim, not a shrug.
    - a {b certified shrinker}: delta debugging over the recorded
      abstract schedule (prefix truncation, chunk removal, single-move
      and drop-move removal), where every accepted candidate is
      re-validated by re-execution and the final schedule is
      concretized and certified by [Runner.replay] applicability plus
      the perpetual-clause history check — the same certificate
      [lib/mc] produces.

    Everything is driven by one root seed: run [r] of batch [b] uses
    the derived stream [(seed, b, r)] and the batch's swarm draw uses
    [(seed, b)], so every sampled run is replayable byte for byte. *)

open Procset

(** How one run picks its schedule. *)
type sampler =
  | Uniform
      (** at each step, a near-uniform admissible move (delivery moves
          weighted above lambda and network-drop moves) *)
  | Pct of int
      (** [Pct d]: per-process random priorities, [d - 1] random
          priority-change points over the run; at each step the
          highest-priority process with a state-changing move runs.
          [d] is the targeted bug depth (number of ordering
          constraints); [Pct 1] never changes priorities. *)

val sampler_name : sampler -> string
val pp_sampler : Format.formatter -> sampler -> unit

type swarm = {
  sw_menus : Mc.Menu.t list;  (** menu families to rotate (nonempty) *)
  sw_budgets : int list;
      (** per-run loss budgets (only consulted when the drawn menu is
          lossy) *)
  sw_stabs : int list;
      (** detector stabilization steps: after step [s] of a run the
          adversary's menu collapses to each process's first value —
          the benign regime every finite prefix must extend into *)
  sw_samplers : sampler list;  (** samplers to rotate *)
}
(** A batch-level configuration menu. Each batch draws one element of
    every list (uniformly, from the batch's derived seed); an empty
    list means "keep the base configuration". *)

type batch_point = {
  bp_batch : int;
  bp_runs : int;  (** cumulative runs executed after this batch *)
  bp_menu : string;  (** menu family in force during the batch *)
  bp_sampler : string;
  bp_budget : int;  (** loss budget in force (0 when not lossy) *)
  bp_stab : int;  (** stabilization step in force *)
  bp_states : int;  (** cumulative distinct canonical state hashes *)
  bp_new_states : int;  (** newly seen this batch *)
  bp_new_depths : int;  (** new decision depths this batch *)
  bp_new_shapes : int;  (** new quorum-history shapes this batch *)
  bp_new_sigs : int;  (** new fault-verdict signatures this batch *)
  bp_new_traces : int;  (** new canonical Mazurkiewicz traces this batch *)
}
(** One point of the coverage saturation curve. *)

type totals = {
  distinct_states : int;
      (** distinct canonical state hashes over all runs *)
  decision_depths : int;
      (** distinct step indices at which some process first decided *)
  quorum_shapes : int;
      (** distinct (process, detector-value) schedule shapes *)
  fault_signatures : int;
      (** distinct network-drop placements (the all-deliveries
          signature included) *)
  canonical_traces : int;
      (** distinct schedules up to swaps of independent adjacent
          moves, canonicalised by the checker's happens-before
          independence relation ({!Mc.Make.trace_key}); the gap
          between [runs] and this count is fuzz budget spent
          re-sampling equivalent interleavings *)
}

module Make (A : Sim.Automaton.S) : sig
  module M : module type of Mc.Make (A)

  type violation = {
    v_run : int;  (** 0-based global index of the violating run *)
    v_batch : int;
    v_property : string;  (** property violated by the shrunk schedule *)
    v_detail : string;
    v_menu : string;  (** menu family the run executed under *)
    v_sampler : string;
    v_budget : int;
    v_stab : int;
    v_moves : M.move list;  (** the schedule exactly as sampled *)
    v_shrunk : M.move list;  (** after certified shrinking *)
    v_candidates : int;  (** candidate re-executions the shrinker spent *)
    v_cx : M.counterexample;  (** concretized from [v_shrunk] *)
    v_replay_ok : bool;
        (** [Runner.replay] accepts the shrunk concrete trace and the
            replayed states still violate [v_property] *)
    v_history_ok : bool;
        (** the shrunk run's detector samples pass the perpetual
            clauses of the menu's class ({!Mc.history_legal}) *)
  }

  type report = {
    algorithm : string;
    seed : int;
    sampler : string;  (** base sampler (batches may override in swarm) *)
    swarm : bool;
    runs : int;  (** runs actually executed (stops at first violation) *)
    max_steps : int;
    steps_total : int;
    decided_runs : int;  (** runs where [stop] fired *)
    quiesced_runs : int;
        (** runs that ran out of state-changing moves early *)
    curve : batch_point list;
    totals : totals;
    violation : violation option;
    wall_seconds : float;
        (** not serialized by {!json_of_report}, which is
            byte-deterministic in the seed *)
  }

  val fuzz :
    ?algo:string ->
    ?sampler:sampler ->
    ?swarm:swarm ->
    ?batch_size:int ->
    ?delivery:[ `Fifo | `Any ] ->
    ?max_steps:int ->
    ?max_drops:int ->
    ?shrink:bool ->
    ?jobs:int ->
    ?checkpoint:string * int ->
    ?resume:string ->
    ?max_batches:int ->
    ?stop:((Pid.t -> A.state) -> bool) ->
    ?decided:(A.state -> bool) ->
    seed:int ->
    runs:int ->
    n:int ->
    menu:Mc.Menu.t ->
    pattern:Sim.Failure_pattern.t ->
    inputs:(Pid.t -> A.input) ->
    props:M.property list ->
    unit ->
    report
  (** [fuzz ~seed ~runs ~n ~menu ~pattern ~inputs ~props ()] samples
      up to [runs] schedules of at most [max_steps] (default [18 * n])
      moves each, evaluating every property after every move, and
      stops at the first violation. [sampler] (default [Uniform] — the
      §6.3 contamination violation is a {e deep} bug, dozens of
      ordering constraints, where the uniform baseline empirically
      dominates PCT; see EXPERIMENTS.md E13) picks the schedule
      discipline; [delivery] (default [`Fifo]) picks the channel
      model a run samples from: [`Fifo] offers only channel heads,
      which keeps the per-step branching factor small enough for
      random search to land the n = 5 contamination violation in
      thousands of runs, while [`Any] (every pending message, the
      paper's set-shaped buffer) dilutes the draw past practical find
      rates at this depth. The {e shrinker} is not bound by the
      sampling model either way: its drain-skipping pass moves
      FIFO-found schedules into the full indexed space, so shrunk
      counterexamples routinely undercut the FIFO-minimal length
      (~50 steps at n = 5, vs 38 for the unrestricted minimum);
      [swarm] resamples the batch
      configuration every [batch_size] (default 1000) runs;
      [max_drops] (default 1) bounds network drops per run when the
      menu is lossy; [stop] ends a run early (counted in
      [decided_runs]); [decided] feeds the decision-depth coverage
      dimension. A violating schedule is shrunk (unless
      [shrink:false]), concretized, and certified against [pattern]
      and the menu's detector class. [algo] (default ["unnamed"]) only
      labels the report.

      [jobs] (default 1) shards whole batches across a domain pool
      ([Mc.Pool]): every run already derives from the split seed
      [(seed, batch, run)] and never reads shared state, so batches
      execute independently against per-domain coverage trackers and
      are merged in batch order afterwards — curve, totals, counters
      and the earliest violation replay the sequential loop exactly.
      The report is therefore deterministic in the arguments {e
      including} [jobs]: same seed, same bytes, for any job count
      (pinned in test_explore.ml and test_cli.ml). [wall_seconds] is
      one monotonic-clock read on the coordinating domain, never a
      per-domain sum.

      [checkpoint:(path, every_n_batches)] writes a versioned snapshot
      of the merged campaign state (coverage key sets, curve,
      counters, batch cursor) to [path] at batch-chunk boundaries;
      [resume] restores one after full validation — raising
      {!Mc.Resume_rejected} on a corrupt file, a wrong schema version,
      or a different campaign fingerprint — and continues from the
      cursor. [max_batches] caps the batches processed by this
      segment (the deterministic interruption hook: a partial segment
      still checkpoints and returns a partial report). Because batch
      results are functions of (seed, batch index) alone and the merge
      always runs in batch order, an interrupted-and-resumed campaign's
      report is byte-identical to the straight-through one, at any
      [jobs] (pinned in test_explore.ml). A violating campaign is
      final and writes no checkpoint. *)

  val shrink_schedule :
    ?max_candidates:int ->
    n:int ->
    inputs:(Pid.t -> A.input) ->
    props:M.property list ->
    M.move list ->
    (M.move list * int, string) result
  (** Delta-debugs a violating schedule down to a locally minimal one:
      prefix truncation at the first violating state, then chunk
      removal at halving granularities, then single-move and drop-move
      removal, then drain skipping (delete a receive and park the
      skipped message by shifting later same-channel indices up by
      one, which escapes the channel-prefix-draining structure
      FIFO-sampled schedules are locked into — the paper's buffer is
      a set, so the certificate does not care about delivery order),
      then coordinate descent over detector values (replace
      one move's value with another value the same process used in the
      input schedule, kept only when a further deletion pass strictly
      shortens — deletion alone stalls on load-bearing steps that
      merely sampled a wasteful quorum), re-executing every candidate
      from the initial configuration ([Error] if the input schedule
      itself does not reach a violation). Every accepted candidate is applicable move
      by move and violates some property of [props]; the pair is the
      shrunk schedule and the number of candidate re-executions spent
      (capped by [max_candidates], default 20000 — the result is then
      the best schedule found so far). *)

  val json_of_report : report -> Report.t
  (** The fuzz report as a JSON document ([lib/report]); excludes
      wall-clock so the bytes are deterministic in the seed. *)

  val pp_report : Format.formatter -> report -> unit
end
