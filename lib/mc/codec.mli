(** Byte-level primitives behind the packed canonical-state encoding
    ([Mc.Make.Packed]) and the campaign checkpoint files: varints,
    interning pools, a full-width byte hash, and a validated
    magic + version + digest + [Marshal] container. See DESIGN.md §5g
    for the codec layout and the checkpoint format. *)

val bytes_hash : Bytes.t -> int
(** FNV-1a over every byte, folded nonnegative. The hash the interned
    packed tables cache — unlike [Hashtbl.hash] it reads the whole
    string, and [Bytes.equal] remains the exact collision backstop. *)

val write_varint : Buffer.t -> int -> unit
(** LEB128 unsigned varint. Raises [Invalid_argument] on negatives. *)

val read_varint : Bytes.t -> int ref -> int
(** Reads at the position ref, advancing it. Raises past the end —
    only ever run on digest-verified bytes, where that is a bug, not
    an input error. *)

(** Interning pools: distinct values to dense first-seen indices, with
    the inverse array for decoding. Structural hashing with structural
    equality as the bucket resolver, so crafted hash collisions get
    distinct indices (pinned in test_codec.ml). *)
module Pool : sig
  type 'a t

  val create : unit -> 'a t
  val length : 'a t -> int

  val intern : 'a t -> 'a -> int
  (** The value's index, allocating the next dense index on first
      sight. *)

  val get : 'a t -> int -> 'a
  (** Inverse of {!intern}. Raises [Invalid_argument] out of range. *)

  val export : 'a t -> 'a array
  (** Values in index order — the checkpointable image. *)

  val import : 'a array -> 'a t
  (** Rebuilds a pool with indices equal to array positions, so packed
      keys written before a checkpoint keep decoding identically after
      a resume. *)
end

type error =
  | Bad_magic
  | Bad_version of int  (** version found in the file *)
  | Params_mismatch of string
      (** well-formed checkpoint for a different campaign — produced
          by the callers' fingerprint checks, not by {!read_file} *)
  | Corrupt of string
      (** truncated file, digest mismatch, unreadable payload *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val write_file : path:string -> version:int -> 'a -> unit
(** Writes [magic | version | payload length | MD5 digest | Marshal
    payload] atomically (temp file + rename): a kill mid-write leaves
    the previous checkpoint intact. *)

val read_file : path:string -> version:int -> ('a, error) result
(** Validates magic, schema version and payload digest {e before}
    unmarshalling, so corrupt or stale files produce a typed [error]
    rather than a [Marshal] segfault. The ['a] is the caller's
    payload type; the digest guarantees the bytes are exactly what
    some {!write_file} produced, and the callers' fingerprint checks
    guarantee it was a checkpoint of the same campaign shape. *)
