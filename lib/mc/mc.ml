(* Bounded model checking of Sim automata: exhaustive exploration of
   every admissible schedule of a small universe up to a depth bound.

   The randomized runner samples interleavings; the proof scenarios
   script one interleaving by hand. This module closes the gap in
   between: for n <= 4 it walks the *whole* tree of (scheduling x
   message delivery x failure-detector value) choices, deduplicating
   confluent interleavings through canonical state memoization and
   pruning commuting step pairs with sleep sets, and evaluates safety
   properties at every reachable state.

   Abstraction. The walker's configuration is (per-process automaton
   states, per-channel pending-message multisets) — deliberately
   *without* the runner's global clock or the envelopes' seq/sent_at
   metadata, which distinguish confluent interleavings and would
   defeat memoization. This is sound for any automaton whose [step]
   depends only on the sender and payload of the received envelope
   (true of every automaton in this repository). A counterexample
   path is re-executed concretely afterwards, with real times and
   sequence numbers, into a [Runner.replay]-compatible trace.

   Failure detectors. The adversary picks, at every step, any value
   from a per-process finite menu. A menu is legal for a detector
   class when every combination of its values satisfies the class's
   *perpetual* clauses (quorum intersection, self-inclusion,
   conditional nonintersection); the "there is a time after which"
   clauses of Omega and of completeness constrain no finite prefix —
   any explored run extends to an admissible full history by
   switching the detector to a benign regime after the horizon.
   [Menu.validate] certifies legality by running the repo's own
   [Fd.Check] clauses over the dense menu history, which dominates
   every selectable run history. *)

open Procset

(* Submodules of the multicore engine, re-exported as part of the
   library interface: [Mc.Intern] (cached-hash interning tables, the
   striped shared visited set), [Mc.Codec] (packed-encoding byte
   primitives and the validated checkpoint container) and [Mc.Pool]
   (the domain pool, which lives in [Sim] so the concurrent executor
   can share it). *)
module Intern = Intern
module Codec = Codec
module Pool = Sim.Pool

(* A [?resume] file that fails validation (bad magic, wrong schema
   version, digest mismatch, different campaign fingerprint, stored
   hashes that do not re-verify) aborts the run with the typed error —
   never a [Marshal] segfault or a silent merge of two campaigns. *)
exception Resume_rejected of Codec.error

(* [Cover]: the memo-coverage record (budgets + sleep set) behind
   memoization, extracted so the domination/update logic — and its
   no-mixture invariant — lives in exactly one place. *)
module Cover = Cover

(* ---------------------------------------------------------------- *)
(* Failure-detector menus                                            *)
(* ---------------------------------------------------------------- *)

module Menu = struct
  type kind = Sigma | Sigma_nu | Sigma_nu_plus | Omega_only | Suspects_menu

  type t = {
    name : string;
    kind : kind;
    values : Pid.t -> Sim.Fd_value.t list;
    lossy : bool;
        (* when set, [Make.run] adds a message-drop alphabet to every
           transition: the network adversary may silently discard the
           deliverable message of any cross-process channel *)
  }

  let dedup_psets sets =
    List.fold_left
      (fun acc q -> if List.exists (Pset.equal q) acc then acc else q :: acc)
      [] sets
    |> List.rev

  let pair l q =
    Sim.Fd_value.Pair (Sim.Fd_value.Leader l, Sim.Fd_value.Quorum q)

  (* Omega constrains no finite prefix, so leader menus only shape the
     adversary's power: a correct process may trust any correct
     process; a faulty process may (also) trust itself. *)
  let leaders ~n ~faulty p =
    let correct = Pset.complement ~n faulty in
    let base = Pset.elements correct in
    if Pset.mem p faulty then p :: base else base

  (* A pairwise-intersecting quorum family for the Sigma-nu classes:
     a correct process outputs either the correct set C or its own
     {p} ∪ F.  Any two such quorums at correct processes intersect
     (C ∩ C, C ∩ ({p} ∪ F) ∋ p, ({p} ∪ F) ∩ ({q} ∪ F) ⊇ F ≠ ∅); a
     faulty process is unconstrained by Sigma-nu and outputs all-faulty
     quorums, which conditional nonintersection exempts. Every quorum
     contains its owner, so the family is also Sigma-nu+-legal. *)
  let nu_quorums ~n ~faulty p =
    let correct = Pset.complement ~n faulty in
    if Pset.mem p faulty then dedup_psets [ Pset.singleton p; faulty ]
    else if Pset.is_empty faulty then [ correct ]
    else dedup_psets [ correct; Pset.add p faulty ]

  (* Uniform Sigma: every quorum, even at faulty processes, must
     intersect every other; all menu quorums contain the pivot. *)
  let sigma_quorums ~n ~faulty p =
    let correct = Pset.complement ~n faulty in
    let pivot = Pset.min_elt correct in
    dedup_psets [ correct; Pset.of_list [ pivot; p ] ]

  let cross ~n ~faulty quorums p =
    List.concat_map
      (fun l -> List.map (pair l) (quorums ~n ~faulty p))
      (leaders ~n ~faulty p)

  let omega_sigma_nu ~n ~faulty =
    {
      name = "(Omega, Sigma-nu) adversarial";
      kind = Sigma_nu;
      values = cross ~n ~faulty nu_quorums;
      lossy = false;
    }

  let omega_sigma_nu_plus ~n ~faulty =
    {
      name = "(Omega, Sigma-nu+) adversarial";
      kind = Sigma_nu_plus;
      values = cross ~n ~faulty nu_quorums;
      lossy = false;
    }

  let omega_sigma ~n ~faulty =
    {
      name = "(Omega, Sigma) pivot";
      kind = Sigma;
      values = cross ~n ~faulty sigma_quorums;
      lossy = false;
    }

  (* The focused Sigma-nu sub-family behind the Section 6.3
     contamination argument: the lowest correct process is pinned to
     (its own leadership, the correct set); every other correct
     process may switch between the correct set and its own
     {p} ∪ F quorum; faulty processes see themselves. All quorums at
     correct processes pairwise intersect, so the family is
     Sigma-nu-legal — yet the {p} ∪ F switch lets a faulty process
     contaminate round boundaries. Exhaustive search under this menu
     is what separates A_nuc from the naive Sigma-nu baseline. *)
  let contamination ?(plus = false) ?quorum ~n ~faulty () =
    let correct = Pset.complement ~n faulty in
    let c0 = Pset.min_elt correct in
    match quorum with
    | None ->
      {
        name =
          Printf.sprintf "(Omega, Sigma-nu%s) contamination family"
            (if plus then "+" else "");
        kind = (if plus then Sigma_nu_plus else Sigma_nu);
        values =
          (fun p ->
            if Pset.mem p faulty then [ pair p (Pset.singleton p) ]
            else if p = c0 then [ pair c0 correct ]
            else dedup_psets [ correct; Pset.add p faulty ]
                 |> List.map (pair p));
        lossy = false;
      }
    | Some fam ->
      (* The same switchable-escape structure, with the correct set
         generalized to the family's minimal quorums (grown inside
         [correct] when the correct set is itself a quorum, inside
         [Pi] otherwise). Each offered quorum gets its owner added
         (monotone families keep it a quorum, and Sigma-nu+ needs
         self-inclusion); min-quorums pairwise intersect by the
         family's uniform intersection law. The {p} ∪ F escape is
         offered to every correct process where it stays
         Sigma-nu-legal — it must meet every family quorum offered to
         the other correct processes, i.e. every min-quorum must
         contain p or touch F. (Unlike the unparameterized menu, c0 is
         not pinned: families like super:1 or grids have a single
         min-quorum that contains the faulty side, and only the escape
         at the lowest correct process keeps a contamination schedule
         expressible at all.) Faulty processes keep their all-faulty
         self-quorum, which conditional nonintersection exempts. *)
      ignore c0;
      let pool =
        if Quorum_family.is_quorum fam ~n correct then correct
        else Pset.full ~n
      in
      let qs = Quorum_family.min_quorums fam ~n ~within:pool in
      let escape_ok p =
        qs <> []
        && List.for_all
             (fun q -> Pset.mem p q || not (Pset.disjoint q faulty))
             qs
      in
      {
        name =
          Printf.sprintf "(Omega, Sigma-nu%s) contamination family [%s]"
            (if plus then "+" else "")
            (Quorum_family.name fam);
        kind = (if plus then Sigma_nu_plus else Sigma_nu);
        values =
          (fun p ->
            if Pset.mem p faulty then [ pair p (Pset.singleton p) ]
            else
              let own = List.map (Pset.add p) qs in
              let own =
                if escape_ok p && not (Pset.is_empty faulty) then
                  own @ [ Pset.add p faulty ]
                else own
              in
              dedup_psets own |> List.map (pair p));
        lossy = false;
      }

  (* The contamination family over lossy links: identical detector
     menus, but every transition additionally offers the network the
     choice of silently dropping a deliverable cross-process message.
     Detector legality is untouched — [validate] certifies the same
     clauses — while the schedule space strictly contains the
     loss-free one, so a loss-free counterexample survives and a
     loss-free exhaustiveness claim is strengthened. *)
  let lossy ?plus ?quorum ~n ~faulty () =
    let base = contamination ?plus ?quorum ~n ~faulty () in
    { base with name = base.name ^ " + lossy links"; lossy = true }

  let leader_only ~n ~faulty =
    {
      name = "Omega adversarial";
      kind = Omega_only;
      values =
        (fun p ->
          List.map (fun l -> Sim.Fd_value.Leader l) (leaders ~n ~faulty p));
      lossy = false;
    }

  let suspects ~n ~faulty =
    {
      name = "<>S adversarial";
      kind = Suspects_menu;
      values =
        (fun _ ->
          let sets =
            dedup_psets
              [ faulty; Pset.empty; Pset.add (Pset.min_elt (Pset.complement ~n faulty)) faulty ]
          in
          List.map (fun s -> Sim.Fd_value.Suspects s) sets);
      lossy = false;
    }

  let quorum_of = function
    | Sim.Fd_value.Quorum q | Sim.Fd_value.Pair (_, Sim.Fd_value.Quorum q) ->
      Some q
    | _ -> None

  (* The dense menu history: every menu value of every process, each at
     its own sampled time. A run's sampled history is a subset of it,
     and the perpetual clauses are universally quantified over samples,
     so menu legality implies legality of every selectable run. *)
  let menu_history ~n menu =
    Fd.History.of_samples ~n
      (List.concat_map
         (fun p -> List.mapi (fun i v -> (p, i, v)) (menu.values p))
         (Pid.all ~n))

  let perpetual_clauses kind pattern h =
    let ( let* ) = Result.bind in
    let quorums_only h =
      Fd.History.map
        (fun v ->
          match quorum_of v with
          | Some q -> Sim.Fd_value.Quorum q
          | None -> v)
        h
    in
    let as_err = Result.map_error (Format.asprintf "%a" Fd.Check.pp_violation) in
    match kind with
    | Omega_only | Suspects_menu -> Ok ()
    | Sigma -> as_err (Fd.Check.intersection ~uniform:true pattern (quorums_only h))
    | Sigma_nu ->
      as_err (Fd.Check.intersection ~uniform:false pattern (quorums_only h))
    | Sigma_nu_plus ->
      let h = quorums_only h in
      let* () = as_err (Fd.Check.intersection ~uniform:false pattern h) in
      let* () = as_err (Fd.Check.self_inclusion h) in
      as_err (Fd.Check.conditional_nonintersection pattern h)

  (* Certify against the caller's pattern — the one the exploration
     actually runs under — so the certificate cannot silently apply to
     a different pattern than the one checked. The perpetual clauses
     read the pattern only through its correct/faulty split, never
     through crash times, so the dense menu history's small artificial
     sample times need no alignment with the pattern's crash times. *)
  let validate ~pattern menu =
    perpetual_clauses menu.kind pattern
      (menu_history ~n:(Sim.Failure_pattern.n pattern) menu)
end

(* [history_legal] checks the sampled detector history of a concrete
   explored run against the perpetual clauses of the menu's detector
   class — the finite-prefix fragment of admissibility (the eventual
   clauses are vacuous on prefixes, exactly as in [Core.Scenario]). *)
let history_legal ~kind ~pattern samples =
  let n = Sim.Failure_pattern.n pattern in
  Menu.perpetual_clauses kind pattern (Fd.History.of_samples ~n samples)

(* ---------------------------------------------------------------- *)
(* Transition-pruning reductions                                     *)
(* ---------------------------------------------------------------- *)

(* All three reductions are state-preserving: they prune *transitions*
   whose target is reached by an equal-length Mazurkiewicz-equivalent
   schedule elsewhere, never states, so verdict and [distinct_states]
   are identical across them (pinned by the differential battery in
   test_dpor.ml).

   - [No_reduction]: every enabled move is expanded everywhere.
   - [Sleep_sets]: the original pid-disjointness sleep sets — after a
     move by process p, earlier siblings and inherited sleepers of a
     different pid stay asleep; drop moves are never slept.
   - [Dpor]: happens-before sleep inheritance over the full
     independence relation [Make.move_dependent] (per-channel, not
     per-pid: a sleeper is woken only by a move it actually races
     with, and drop moves are slept too), plus a per-run no-op cache
     that skips known self-loop lambda steps at move generation. The
     woken sleepers are exactly the classical DPOR backtrack points:
     a detected race re-inserts the slept move into the sibling
     exploration instead of pruning it. *)
type reduction = No_reduction | Sleep_sets | Dpor

let pp_reduction fmt r =
  Format.pp_print_string fmt
    (match r with
    | No_reduction -> "none"
    | Sleep_sets -> "sleep"
    | Dpor -> "dpor")

(* ---------------------------------------------------------------- *)
(* Exploration statistics (shared across functor instantiations)     *)
(* ---------------------------------------------------------------- *)

type stats = {
  transitions : int;  (** edges taken (including into already-seen states) *)
  distinct_states : int;  (** canonical states after deduplication *)
  dedup_hits : int;
      (** transitions absorbed by memoization (0 when [dedup] is off) *)
  self_loops : int;  (** transitions skipped because child = parent *)
  sleep_skipped : int;  (** moves pruned by sleep sets *)
  races : int;
      (** [Dpor] only: dependent (taken move, sleeping candidate)
          pairs detected during sleep-set inheritance *)
  backtracks : int;
      (** [Dpor] only: sleepers woken by a race — the backtrack
          points re-inserted into the sibling exploration *)
  decided_leaves : int;  (** states where [stop] held, not expanded *)
  depth_leaves : int;  (** states truncated by the depth bound *)
  max_depth : int;
  truncated : bool;  (** hit [max_states]; exploration incomplete *)
  wall_seconds : float;
}

let states_per_sec s =
  if s.wall_seconds <= 0.0 then infinity
  else float_of_int s.distinct_states /. s.wall_seconds

let pp_stats fmt s =
  Format.fprintf fmt
    "%d transitions, %d distinct states (%d dedup hits, %d self-loops, %d \
     sleep-pruned, %d races, %d backtracks), %d decided leaves, %d depth \
     leaves, %.0f states/s%s"
    s.transitions s.distinct_states s.dedup_hits s.self_loops s.sleep_skipped
    s.races s.backtracks s.decided_leaves s.depth_leaves (states_per_sec s)
    (if s.truncated then " [TRUNCATED]" else "")

(* ---------------------------------------------------------------- *)
(* The checker functor                                               *)
(* ---------------------------------------------------------------- *)

module Make (A : Sim.Automaton.S) = struct
  module R = Sim.Runner.Make (A)

  type move = {
    m_pid : Pid.t;
    m_fd : Sim.Fd_value.t;
    m_recv : (Pid.t * int) option;
        (* (src, index into the src->pid channel); [None] = lambda *)
    m_drop : bool;
        (* lossy-menu network move: the message designated by
           [m_recv] (addressed to [m_pid]) is discarded instead of
           delivered; no process steps, [m_fd] is [Unit] *)
  }

  (* [m_recv] is matched out by hand: moves are compared once per
     sleeper per node (sleep membership, [Cover]'s subset and
     intersection), where a polymorphic [=] on the option shows up as
     the single hottest call of the whole walk. *)
  let move_equal a b =
    a.m_pid = b.m_pid && a.m_drop = b.m_drop
    && (match (a.m_recv, b.m_recv) with
       | None, None -> true
       | Some (s, i), Some (s', i') -> s = s' && i = i'
       | None, Some _ | Some _, None -> false)
    && Sim.Fd_value.equal a.m_fd b.m_fd

  type property = {
    prop_name : string;
    prop_check : (Pid.t -> A.state) -> (unit, string) result;
  }

  let invariant ~name f = { prop_name = name; prop_check = f }

  let consensus_props ~decision ~proposals ~flavour ~pattern =
    let outcome states =
      Consensus.Spec.outcome ~pattern ~proposals ~decisions:(fun p ->
          decision (states p))
    in
    [
      {
        prop_name = "validity";
        prop_check = (fun states -> Consensus.Spec.check_validity (outcome states));
      };
      {
        prop_name =
          Format.asprintf "%a agreement" Consensus.Spec.pp_flavour flavour;
        prop_check =
          (fun states ->
            Consensus.Spec.check_agreement flavour (outcome states));
      };
    ]

  let decided_stop ~decision ~scope states =
    Pset.for_all (fun p -> decision (states p) <> None) scope

  type counterexample = {
    cx_property : string;
    cx_detail : string;
    cx_moves : move list;  (** abstract schedule from the initial state *)
    cx_steps : R.replay_step list;  (** concrete, [R.replay]-compatible *)
    cx_samples : (Pid.t * int * Sim.Fd_value.t) list;
        (** the detector history actually sampled, for legality checks *)
    cx_states : A.state array;  (** final states along the schedule *)
  }

  type report = { stats : stats; violation : counterexample option }

  (* -------------------------------------------------------------- *)
  (* Abstract configurations                                         *)
  (* -------------------------------------------------------------- *)

  (* chans.(src * n + dst): pending payloads src -> dst, send order.
     Mailbox *contents* are part of the canonical state; envelope
     metadata is not (see the module header). *)
  type config = { states : A.state array; chans : A.message list array }

  (* The automaton states of this repository are pure data
     (ints, options, Pset bitsets, Maps), so polymorphic structural
     equality and hashing are sound here. Shape differences between
     structurally different but extensionally equal Maps only cost
     dedup hits, never soundness. *)
  let config_equal a b = a.states = b.states && a.chans = b.chans
  let config_hash c = Hashtbl.hash_param 150 600 c

  (* -------------------------------------------------------------- *)
  (* Packed canonical-state encoding                                  *)
  (* -------------------------------------------------------------- *)

  (* A config retained in the visited set used to be the heap graph
     itself: n state values, n*n channel list spines, every payload.
     Campaigns see few *distinct per-process states* and few distinct
     payloads relative to distinct configurations, so the packed form
     interns both in [Codec.Pool]s and stores a config as a flat byte
     string of varint pool indices — one small [Bytes.t] per visited
     state instead of a shared-nothing object graph (the B12 table
     measures the per-state ratio).

     Layout: n varints (state pool index per process, pid order) |
     varint count of non-empty channels | per non-empty channel in
     ascending (src * n + dst) order: varint channel index, varint
     queue length, queue-order varint message pool indices.

     [encode] is injective with respect to [config_equal] given one
     pool: pool indices are in bijection with distinct values, the
     layout is uniquely decodable, and channel order is canonical —
     so [Bytes.equal] on packed keys *is* [config_equal], distinct
     states stay distinct (crafted hash collisions included, pinned
     in test_codec.ml), and [decode] is the exact inverse. The pool
     is mutex-protected: parallel workers intern concurrently. *)
  module Packed = struct
    type pool = {
      pk_n : int;
      pk_lock : Mutex.t;
      pk_states : A.state Codec.Pool.t;
      pk_msgs : A.message Codec.Pool.t;
    }

    let create ~n =
      {
        pk_n = n;
        pk_lock = Mutex.create ();
        pk_states = Codec.Pool.create ();
        pk_msgs = Codec.Pool.create ();
      }

    (* resume: rebuild pools whose indices are the checkpointed array
       positions, so stored packed keys keep decoding identically *)
    let of_pools ~n states msgs =
      {
        pk_n = n;
        pk_lock = Mutex.create ();
        pk_states = Codec.Pool.import states;
        pk_msgs = Codec.Pool.import msgs;
      }

    let export_pools p =
      (Codec.Pool.export p.pk_states, Codec.Pool.export p.pk_msgs)

    let encode p cfg =
      Mutex.lock p.pk_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock p.pk_lock)
        (fun () ->
          let n = p.pk_n in
          let buf = Buffer.create 64 in
          Array.iter
            (fun st -> Codec.write_varint buf (Codec.Pool.intern p.pk_states st))
            cfg.states;
          let nonempty = ref 0 in
          Array.iter (fun q -> if q <> [] then incr nonempty) cfg.chans;
          Codec.write_varint buf !nonempty;
          for c = 0 to (n * n) - 1 do
            match cfg.chans.(c) with
            | [] -> ()
            | q ->
              Codec.write_varint buf c;
              Codec.write_varint buf (List.length q);
              List.iter
                (fun m ->
                  Codec.write_varint buf (Codec.Pool.intern p.pk_msgs m))
                q
          done;
          Buffer.to_bytes buf)

    let decode p b =
      Mutex.lock p.pk_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock p.pk_lock)
        (fun () ->
          let n = p.pk_n in
          let pos = ref 0 in
          let rec read_k k acc =
            if k = 0 then List.rev acc
            else read_k (k - 1) (Codec.read_varint b pos :: acc)
          in
          let states =
            Array.of_list
              (List.map (Codec.Pool.get p.pk_states) (read_k n []))
          in
          let chans = Array.make (n * n) [] in
          let k = Codec.read_varint b pos in
          for _ = 1 to k do
            let c = Codec.read_varint b pos in
            let len = Codec.read_varint b pos in
            chans.(c) <-
              List.map (Codec.Pool.get p.pk_msgs) (read_k len [])
          done;
          if !pos <> Bytes.length b then
            invalid_arg "Packed.decode: trailing bytes";
          { states; chans })
  end

  module BKey = struct
    type t = Bytes.t

    let equal = Bytes.equal
  end

  (* Memo keys are the interned *packed bytes*, hashed once with the
     full-width [Codec.bytes_hash] at encode time ([Intern.hashed]);
     equality prefilters on the cached hash with [Bytes.equal] — i.e.
     [config_equal], by injectivity of [encode] — as the collision
     backstop (pinned in test_codec.ml). The table retains one flat
     byte string per state instead of the config heap graph. *)
  module Tbl = Intern.Table (BKey)
  module Shared = Intern.Striped (BKey)

  (* The memo-coverage record (remaining depth, remaining loss budget,
     sleep set) lives in [Cover]; every absorption/update decision of
     both the sequential and the parallel walker goes through
     [Cov.revisit], which enforces the no-mixture rule. *)
  module Cov = Cover.Make (struct
    type t = move

    let equal = move_equal
  end)

  let rec remove_nth i = function
    | [] -> invalid_arg "remove_nth"
    | x :: rest -> if i = 0 then rest else x :: remove_nth (i - 1) rest

  let initial_config ~n ~inputs =
    {
      states = Array.init n (fun p -> A.initial ~n ~self:p (inputs p));
      chans = Array.make (n * n) [];
    }

  (* Delivery choices for process [p]. Under [`Fifo] each channel
     delivers in send order, so only its head is eligible — pending
     channel states stay suffixes of the send sequence instead of
     arbitrary sub-multisets, which keeps the reachable space
     polynomial in the per-channel traffic. Under [`Any], any pending
     message may be delivered (one representative per payload-distinct
     entry), matching the runner's full [Matching]-choice latitude. *)
  let recv_options ~n ~delivery cfg p =
    let opts = ref [] in
    for src = n - 1 downto 0 do
      match (delivery, cfg.chans.((src * n) + p)) with
      | _, [] -> ()
      | `Fifo, _ :: _ -> opts := (src, 0) :: !opts
      | `Any, q ->
        let rec go i seen = function
          | [] -> ()
          | m :: rest ->
            if List.exists (A.equal_message m) seen then go (i + 1) seen rest
            else begin
              opts := (src, i) :: !opts;
              go (i + 1) (m :: seen) rest
            end
        in
        go 0 [] q
    done;
    !opts

  let moves_of ~n ~delivery ~lossy ~menus cfg =
    let process_moves =
      List.concat_map
        (fun p ->
          let recvs =
            List.map (fun r -> Some r) (recv_options ~n ~delivery cfg p)
            @ [ None ]
          in
          List.concat_map
            (fun m_recv ->
              List.map
                (fun m_fd -> { m_pid = p; m_fd; m_recv; m_drop = false })
                menus.(p))
            recvs)
        (Pid.all ~n)
    in
    if not lossy then process_moves
    else
      (* Network moves, enumerated after the process moves so DFS
         walks the loss-free subtree first. Dropping only deliverable
         messages loses no generality: under FIFO links the delivered
         sequence of a channel with arbitrary loss is exactly a
         subsequence of the send sequence, and every subsequence is
         generated by the per-head deliver-or-drop choice (and
         likewise per eligible representative under [`Any]).
         Self-channels are exempt, as in [Sim.Faults]. *)
      process_moves
      @ List.concat_map
          (fun p ->
            List.filter_map
              (fun (src, i) ->
                if Pid.equal src p then None
                else
                  Some
                    {
                      m_pid = p;
                      m_fd = Sim.Fd_value.Unit;
                      m_recv = Some (src, i);
                      m_drop = true;
                    })
              (recv_options ~n ~delivery cfg p))
          (Pid.all ~n)

  let apply ~n cfg mv =
    let p = mv.m_pid in
    if mv.m_drop then begin
      (* network move: discard the designated message; no process
         steps, so the states array is shared untouched *)
      let src, idx =
        match mv.m_recv with Some r -> r | None -> assert false
      in
      let c = (src * n) + p in
      let chans = Array.copy cfg.chans in
      chans.(c) <- remove_nth idx chans.(c);
      { states = cfg.states; chans }
    end
    else begin
    let received, chans =
      match mv.m_recv with
      | None -> (None, cfg.chans)
      | Some (src, idx) ->
        let c = (src * n) + p in
        let q = cfg.chans.(c) in
        let payload = List.nth q idx in
        let chans = Array.copy cfg.chans in
        chans.(c) <- remove_nth idx q;
        (* seq/sent_at are not part of the abstraction; the automata
           only read src and payload *)
        (Some { Sim.Envelope.src; dst = p; seq = 0; sent_at = 0; payload }, chans)
    in
    let st, sends = A.step ~n ~self:p cfg.states.(p) received mv.m_fd in
    let states = Array.copy cfg.states in
    states.(p) <- st;
    let chans =
      if sends <> [] && chans == cfg.chans then Array.copy chans else chans
    in
    List.iter
      (fun (dst, m) -> chans.((p * n) + dst) <- chans.((p * n) + dst) @ [ m ])
      sends;
    { states; chans }
    end

  (* -------------------------------------------------------------- *)
  (* Exploration                                                     *)
  (* -------------------------------------------------------------- *)

  exception Found of string * string * move list
  exception Limit

  (* ------------------------------------------------------------- *)
  (* The independence relation                                       *)
  (* ------------------------------------------------------------- *)

  (* The channel a move consumes from, if any: a delivery or drop of
     (src, i) consumes from the src -> m_pid channel; a lambda
     consumes nothing. *)
  let consumes mv =
    match mv.m_recv with
    | Some (src, _) -> Some (src, mv.m_pid)
    | None -> None

  (* [move_dependent a b]: the static dependence (non-commutation)
     relation over the move alphabet. Two moves are independent when,
     from any configuration enabling both, executing them in either
     order yields the same configuration and neither disables the
     other. Soundness rests on the state encoding: a process move by
     [p] reads/writes [states.(p)], removes one indexed message from a
     [(src, p)] channel, and appends at the tails of [(p, dst)]
     channels; a drop removes one indexed message from its channel and
     touches no process state. Hence:

     - two non-drop moves are dependent iff they step the same
       process (distinct-pid moves touch disjoint state slots, and
       tail-appends commute with indexed removals on a shared
       channel — the detector value is part of the move, so there is
       no shared detector state to race on);
     - two drops are dependent iff they drain the same channel
       (indexed removals on one channel do not commute);
     - a drop and a process move are dependent iff the process move
       consumes from the dropped channel (a send *into* a dropped
       channel appends at the tail and commutes with the head-side
       removal; the drop's budget debit commutes with everything —
       it is a function of the move multiset, not the order).

     Fault verdicts need no extra clause: the drop move itself *is*
     the verdict (keyed by its channel and index), exactly as
     [Sim.Faults] keys verdicts by (src, dst, seq, time) — there is
     no hidden verdict state for two moves to race on. The relation
     is symmetric and reflexive (every move is dependent with
     itself: same pid, or same channel), both pinned by qcheck in
     test_dpor.ml. *)
  let move_dependent a b =
    if (not a.m_drop) && not b.m_drop then a.m_pid = b.m_pid
    else
      (* at least one is a drop, so at least one consumes; equal
         channels means equal sources and equal consumers *)
      match (a.m_recv, b.m_recv) with
      | Some (sa, _), Some (sb, _) -> sa = sb && a.m_pid = b.m_pid
      | None, _ | _, None -> false

  (* Canonical Mazurkiewicz-trace key of a schedule: linearize the
     dependence DAG (edges i -> j for i < j with dependent moves)
     greedily by the structurally-minimal available move, then hash
     the resulting label sequence. Equal-label moves are always
     mutually dependent (same pid, or same channel), so the trace's
     equal labels are totally ordered and the greedy-minimal
     linearization is a canonical form: two schedules that differ
     only by swaps of adjacent independent moves get the same key.
     O(length²), fine for the <= ~100-move schedules recorded here. *)
  let trace_key moves =
    let arr = Array.of_list moves in
    let len = Array.length arr in
    let indeg = Array.make len 0 in
    for j = 0 to len - 1 do
      for i = 0 to j - 1 do
        if move_dependent arr.(i) arr.(j) then indeg.(j) <- indeg.(j) + 1
      done
    done;
    let taken = Array.make len false in
    let out = ref [] in
    for _ = 1 to len do
      let best = ref (-1) in
      for i = len - 1 downto 0 do
        if
          (not taken.(i))
          && indeg.(i) = 0
          && (!best < 0 || Stdlib.compare arr.(i) arr.(!best) <= 0)
        then best := i
      done;
      let b = !best in
      taken.(b) <- true;
      out := arr.(b) :: !out;
      for j = b + 1 to len - 1 do
        if (not taken.(j)) && move_dependent arr.(b) arr.(j) then
          indeg.(j) <- indeg.(j) - 1
      done
    done;
    Hashtbl.hash_param 500 1000 (List.rev !out)

  (* Re-execute an abstract schedule with real envelopes: runner-style
     per-sender sequence numbers and a global clock, producing the
     trace [R.replay] validates. *)
  let concretize ~n ~inputs moves =
    let states = Array.init n (fun p -> A.initial ~n ~self:p (inputs p)) in
    let chans = Array.make (n * n) [] in
    let send_seq = Array.make n 0 in
    let time = ref 1 in
    let steps = ref [] and samples = ref [] in
    List.iter
      (fun mv ->
        let p = mv.m_pid in
        if mv.m_drop then begin
          (* the network discards the message: no schedule step, no
             detector sample, no tick — on the concrete trace a drop
             is just a message nobody ever receives *)
          let src, idx =
            match mv.m_recv with Some r -> r | None -> assert false
          in
          let c = (src * n) + p in
          chans.(c) <- remove_nth idx chans.(c)
        end
        else begin
        let received =
          match mv.m_recv with
          | None -> None
          | Some (src, idx) ->
            let c = (src * n) + p in
            let env = List.nth chans.(c) idx in
            chans.(c) <- remove_nth idx chans.(c);
            Some env
        in
        samples := (p, !time, mv.m_fd) :: !samples;
        steps := { R.r_pid = p; r_received = received; r_fd = mv.m_fd } :: !steps;
        let st, sends = A.step ~n ~self:p states.(p) received mv.m_fd in
        states.(p) <- st;
        List.iter
          (fun (dst, payload) ->
            let seq = send_seq.(p) in
            send_seq.(p) <- seq + 1;
            chans.((p * n) + dst) <-
              chans.((p * n) + dst)
              @ [ { Sim.Envelope.src = p; dst; seq; sent_at = !time; payload } ])
          sends;
        incr time
        end)
      moves;
    (List.rev !steps, List.rev !samples, states)

  (* Shared tail of the sequential and parallel drivers: concretize
     the violating schedule, if any, into the certified report. *)
  let finish ~n ~inputs ~stats violation =
    match violation with
    | None -> { stats; violation = None }
    | Some (cx_property, cx_detail, cx_moves) ->
      let cx_steps, cx_samples, cx_states = concretize ~n ~inputs cx_moves in
      {
        stats;
        violation =
          Some
            { cx_property; cx_detail; cx_moves; cx_steps; cx_samples; cx_states };
      }

  (* Per-node sibling index for race partitioning. [move_dependent]
     couples a move only with same-pid non-drop moves (when itself a
     non-drop) or with the consumers of one channel (when a drop is
     involved), so bucketing siblings by that key — non-drop moves by
     pid, drop moves by consumed channel — lets race detection for a
     taken move read just its own buckets instead of walking the whole
     sibling list. With a lossy menu a node's sibling list is
     O(n * |menu| + channels) long while a message has O(|menu|)
     consumers; the old [List.partition] walk made sleep inheritance
     quadratic in the sibling list per node, the B11 wall-clock
     regression of dpor against sleep-sets at depth >= 11. *)
  module Sibs = struct
    type t = {
      s_pid : move list array;  (* non-drop moves, indexed by m_pid *)
      s_chan : move list array;
          (* drop moves, indexed by consumed channel src * n + dst *)
    }

    let create ~n = { s_pid = Array.make n []; s_chan = Array.make (n * n) [] }

    let chan ~n mv =
      match mv.m_recv with
      | Some (src, _) -> (src * n) + mv.m_pid
      | None -> invalid_arg "Sibs.chan: lambda move"

    let add ~n t mv =
      if mv.m_drop then begin
        let c = chan ~n mv in
        t.s_chan.(c) <- mv :: t.s_chan.(c)
      end
      else t.s_pid.(mv.m_pid) <- mv :: t.s_pid.(mv.m_pid)

    let of_list ~n ms =
      let t = create ~n in
      List.iter (add ~n t) ms;
      t

    (* membership probes only the one bucket the move could be in *)
    let mem ~n t mv =
      List.exists (move_equal mv)
        (if mv.m_drop then t.s_chan.(chan ~n mv) else t.s_pid.(mv.m_pid))
  end

  (* Sleep-set inheritance, per reduction. [Sleep_sets] keeps a
     sleeper asleep when it has a different pid than the taken move
     (drop moves conservatively never slept); [Dpor] keeps every
     sleeper — drops included — that is *independent* of the taken
     move under [move_dependent]. A dependent pair is a detected race
     ([races]); a dependent pair whose sleeper was inherited (in
     [slept], not just an earlier sibling in [explored]) is a woken
     sleeper — the backtrack point re-inserted into this sibling's
     exploration ([backtracks]). Both prune transitions only: a
     slept move's schedules are walked, move for move, from the
     sibling that put it to sleep, so reachable states within the
     depth bound are untouched (the differential battery pins
     distinct-state equality across all three reductions).

     The inherited set is computed bucket-wise from the [Sibs]
     indices: the buckets dependence couples to [mv] are counted as
     races (and, from [slept], as backtracks), every other bucket is
     kept wholesale. The *set* of kept sleepers is exactly the old
     [List.partition] filter's — only the list order differs, and
     every consumer of sleep sets (membership, [Cover]'s subset and
     intersection, the counters) is order-insensitive. *)
  let inherit_slept ~reduction ~lossy ~races ~backtracks ~n
      ~(explored : Sibs.t) ~(slept : Sibs.t) mv =
    match reduction with
    | No_reduction -> []
    | Sleep_sets ->
      (* non-drop moves of a different pid stay asleep; the drop
         buckets are never slept under this reduction *)
      let acc = ref [] in
      for p = n - 1 downto 0 do
        if p <> mv.m_pid then
          acc :=
            List.rev_append explored.Sibs.s_pid.(p)
              (List.rev_append slept.Sibs.s_pid.(p) !acc)
      done;
      !acc
    | Dpor ->
      let keep = ref [] in
      let nraces = ref 0 and nbt = ref 0 in
      let scan is_slept (t : Sibs.t) =
        let dep = ref 0 in
        (match consumes mv with
        | Some (src, dst) ->
          (* the consumed channel's drops race with [mv] whether or
             not [mv] is itself a drop; every other channel's drops
             commute with it. A reliable menu generates no drop
             moves, so its [s_chan] buckets are all empty — skip the
             n^2 bucket walk outright. *)
          if lossy then begin
            let c = (src * n) + dst in
            for c' = (n * n) - 1 downto 0 do
              if c' = c then dep := !dep + List.length t.Sibs.s_chan.(c')
              else keep := List.rev_append t.Sibs.s_chan.(c') !keep
            done
          end;
          if mv.m_drop then
            (* a drop races with the dropped channel's deliveries —
               all in the consumer's pid bucket, filtered by source —
               and with nothing else the process does *)
            for p = n - 1 downto 0 do
              if p <> dst then keep := List.rev_append t.Sibs.s_pid.(p) !keep
              else
                List.iter
                  (fun m ->
                    match m.m_recv with
                    | Some (s, _) when s = src -> incr dep
                    | _ -> keep := m :: !keep)
                  t.Sibs.s_pid.(p)
            done
          else
            for p = n - 1 downto 0 do
              if p = mv.m_pid then dep := !dep + List.length t.Sibs.s_pid.(p)
              else keep := List.rev_append t.Sibs.s_pid.(p) !keep
            done
        | None ->
          (* lambda: dependent only on its own process's non-drop
             moves; every drop commutes with it *)
          if lossy then
            for c' = (n * n) - 1 downto 0 do
              keep := List.rev_append t.Sibs.s_chan.(c') !keep
            done;
          for p = n - 1 downto 0 do
            if p = mv.m_pid then dep := !dep + List.length t.Sibs.s_pid.(p)
            else keep := List.rev_append t.Sibs.s_pid.(p) !keep
          done);
        nraces := !nraces + !dep;
        if is_slept then nbt := !nbt + !dep
      in
      scan false explored;
      scan true slept;
      races := !races + !nraces;
      backtracks := !backtracks + !nbt;
      !keep

  (* A structural hash over detector values, so the no-op memo can use
     a monomorphic [Hashtbl.Make] instance: the generic table's
     [caml_hash]/[caml_compare] calls per probe were the last
     DPOR-only cost visible in the B11 profiles. The [Pset.t] leaves
     are immediate ints, so [Hashtbl.hash] on them is a constant-time
     word mix, not a traversal. *)
  let rec fd_hash : Sim.Fd_value.t -> int = function
    | Sim.Fd_value.Unit -> 0x2545f491
    | Leader p -> 0x01000193 + p
    | Quorum q -> 0x811c9dc5 lxor Hashtbl.hash q
    | Suspects s -> 0x7feb352d lxor Hashtbl.hash s
    | Pair (a, b) -> (fd_hash a * 0x01000193) lxor fd_hash b

  module Noop_tbl = Hashtbl.Make (struct
    type t = Pid.t * int * Sim.Fd_value.t

    let equal (p, i, f) (p', i', f') =
      p = p' && i = i' && Sim.Fd_value.equal f f'

    let hash (p, i, f) = (((p * 31) + i) * 0x01000193) lxor fd_hash f
  end)

  let run_seq ~reduction ~dedup ~delivery ~max_states ~max_drops ~stop ~n
      ~menu ~depth ~inputs ~props () =
    let t0 = Sim.Clock.now () in
    let lossy = menu.Menu.lossy in
    let menus = Array.init n (fun p -> menu.Menu.values p) in
    let sleep = reduction <> No_reduction in
    let dpor = reduction = Dpor in
    (* Known no-op lambda steps ([Dpor] only): a lambda step's result
       is a function of (pid, its state, the detector value) alone, so
       once observed to change nothing it is skipped at move
       generation — without re-applying [A.step] — at every later
       node. Counted as a [self_loops] skip but not a transition; the
       non-DPOR reductions keep their exact historical counters.
       No-ops are never recorded in sleep sets (they are skipped
       before the sleep check can record them), so the memo coverage
       domination is untouched. *)
    let noop = Noop_tbl.create 1024 in
    let visited = Tbl.create 65536 in
    let pool = Packed.create ~n in
    (* one packed encode + full-width hash per transition, computed at
       the parent and reused at the child's node; the table retains
       only the packed bytes *)
    let hconfig cfg = Intern.hashed Codec.bytes_hash (Packed.encode pool cfg) in
    (* the packed layout leads with the n state pool indices, so the
       parent's own key yields [states.(p)]'s index — the cheap [noop]
       key that replaces hashing the state structurally per probe *)
    let state_ix (hc : Bytes.t Intern.hashed) p =
      let pos = ref 0 in
      for _ = 1 to p do
        ignore (Codec.read_varint hc.Intern.iv pos)
      done;
      Codec.read_varint hc.Intern.iv pos
    in
    let transitions = ref 0
    and dedup_hits = ref 0
    and self_loops = ref 0
    and sleep_skipped = ref 0
    and races = ref 0
    and backtracks = ref 0
    and decided_leaves = ref 0
    and depth_leaves = ref 0
    and max_depth = ref 0
    and truncated = ref false in
    let check_props cfg path_rev =
      List.iter
        (fun pr ->
          match pr.prop_check (fun p -> cfg.states.(p)) with
          | Ok () -> ()
          | Error d -> raise (Found (pr.prop_name, d, List.rev path_rev)))
        props
    in
    let rec dfs cfg hc remaining drops slept path_rev =
      if depth - remaining > !max_depth then max_depth := depth - remaining;
      let expand_with slept =
        (* the drop alphabet switches off once the path's loss budget
           is spent *)
        let all = moves_of ~n ~delivery ~lossy:(lossy && drops > 0) ~menus cfg in
        (* index the inherited sleepers once per node; earlier
           explored siblings accumulate in the same bucketed form *)
        let sl = Sibs.of_list ~n slept in
        let ex = Sibs.create ~n in
        List.iter
          (fun mv ->
            if sleep && Sibs.mem ~n sl mv then incr sleep_skipped
            else if
              dpor
              && mv.m_recv = None
              && Noop_tbl.mem noop (mv.m_pid, state_ix hc mv.m_pid, mv.m_fd)
            then incr self_loops
            else begin
              let child = apply ~n cfg mv in
              incr transitions;
              (* [apply] shares [chans] physically exactly when the
                 move neither consumed nor sent, and copies [states]
                 touching only slot [m_pid] — so the self-loop test
                 compares one state slot on that fast path instead of
                 the whole config *)
              let is_self_loop =
                if child.chans == cfg.chans then
                  child.states.(mv.m_pid) = cfg.states.(mv.m_pid)
                else child.states = cfg.states && child.chans = cfg.chans
              in
              if is_self_loop then begin
                (* self-loop (e.g. a lambda step whose detector value
                   unlocks nothing): no new state, and every move
                   enabled at the child is enabled here — skip *)
                incr self_loops;
                if dpor && mv.m_recv = None then
                  Noop_tbl.replace noop
                    (mv.m_pid, state_ix hc mv.m_pid, mv.m_fd)
                    ()
              end
              else begin
              let child_slept =
                inherit_slept ~reduction ~lossy ~races ~backtracks ~n
                  ~explored:ex ~slept:sl mv
              in
              dfs child (hconfig child) (remaining - 1)
                (if mv.m_drop then drops - 1 else drops)
                child_slept (mv :: path_rev);
              if sleep then Sibs.add ~n ex mv
              end
            end)
          all
      in
      match Tbl.find_opt visited hc with
      | Some e when dedup -> (
        match Cov.revisit e ~remaining ~drops ~slept with
        | `Absorbed -> incr dedup_hits
        | `Expand slept' ->
          if remaining > 0 then expand_with slept'
          else incr depth_leaves)
      | Some _ -> (* dedup off: nothing is absorbed; re-explore the revisit *)
        if (match stop with Some f -> f (fun p -> cfg.states.(p)) | None -> false)
        then incr decided_leaves
        else if remaining = 0 then incr depth_leaves
        else expand_with slept
      | None ->
        if Tbl.length visited >= max_states then begin
          truncated := true;
          raise Limit
        end;
        check_props cfg path_rev;
        if
          match stop with
          | Some f -> f (fun p -> cfg.states.(p))
          | None -> false
        then begin
          (* all-decided goal state: safety can no longer change in
             the checked scope; never expand, at any budget *)
          Tbl.add visited hc (Cov.goal ());
          incr decided_leaves
        end
        else begin
          Tbl.add visited hc (Cov.make ~remaining ~drops ~slept);
          if remaining = 0 then incr depth_leaves else expand_with slept
        end
    in
    let root = initial_config ~n ~inputs in
    let violation =
      try
        dfs root (hconfig root) depth max_drops [] [];
        None
      with
      | Limit -> None
      | Found (prop, detail, moves) -> Some (prop, detail, moves)
    in
    let stats =
      {
        transitions = !transitions;
        distinct_states = Tbl.length visited;
        dedup_hits = !dedup_hits;
        self_loops = !self_loops;
        sleep_skipped = !sleep_skipped;
        races = !races;
        backtracks = !backtracks;
        decided_leaves = !decided_leaves;
        depth_leaves = !depth_leaves;
        max_depth = !max_depth;
        truncated = !truncated;
        wall_seconds = Sim.Clock.elapsed t0;
      }
    in
    finish ~n ~inputs ~stats violation

  (* ---------------------------------------------------------------- *)
  (* Campaign checkpoints                                              *)
  (* ---------------------------------------------------------------- *)

  (* Schema version of the mc checkpoint container. The fuzz
     checkpoint uses a different version number on the same container,
     so resuming an mc campaign from a fuzz file fails as
     [Bad_version], before any unmarshalling. *)
  let ckpt_version = 1

  (* Everything that must match for a resume to be meaningful: the
     campaign shape. [max_states] is deliberately absent — resuming a
     truncated campaign under a larger budget is the point of
     checkpointing; the restored id watermark keeps the budget
     cumulative. [fp_root] hashes the packed initial configuration
     under a fresh pool, discriminating automata and inputs beyond
     what the named parameters capture. *)
  type fingerprint = {
    fp_n : int;
    fp_depth : int;
    fp_reduction : string;
    fp_dedup : bool;
    fp_delivery : string;
    fp_max_drops : int;
    fp_menu : string;
    fp_root : int;
  }

  type ckpt = {
    ck_fp : fingerprint;
    ck_states : A.state array;  (* Packed state pool, index order *)
    ck_msgs : A.message array;  (* Packed message pool, index order *)
    ck_visited : (int * Bytes.t * Cov.entry) array;
        (* (cached hash, packed key, coverage) per visited state *)
    ck_tasks : (config * int * int * move list * move list) array;
        (* the frontier task queue, as built by the prefix walk *)
    ck_next : int;  (* first task not yet fully expanded *)
    ck_counts : int array;  (* cumulative stats, [snapshot] order *)
  }

  let fp_describe fp =
    Printf.sprintf
      "n=%d depth=%d reduction=%s dedup=%b delivery=%s max_drops=%d menu=%S \
       root=%d"
      fp.fp_n fp.fp_depth fp.fp_reduction fp.fp_dedup fp.fp_delivery
      fp.fp_max_drops fp.fp_menu fp.fp_root

  let fingerprint ~reduction ~dedup ~delivery ~max_drops ~n ~menu ~depth
      ~inputs =
    {
      fp_n = n;
      fp_depth = depth;
      fp_reduction = Format.asprintf "%a" pp_reduction reduction;
      fp_dedup = dedup;
      fp_delivery = (match delivery with `Fifo -> "fifo" | `Any -> "any");
      fp_max_drops = max_drops;
      fp_menu = menu.Menu.name;
      fp_root =
        Codec.bytes_hash
          (Packed.encode (Packed.create ~n) (initial_config ~n ~inputs));
    }

  (* Load + validate: the container layer ([Codec.read_file]) rejects
     bad magic, wrong schema versions and digest mismatches before
     unmarshalling; the fingerprint check rejects well-formed
     checkpoints of a different campaign; and every stored visited
     key is re-verified — cached hash against a re-hash of the bytes,
     and decode∘encode byte-identity against the restored pools — so
     a checkpoint that would corrupt the memo table is refused with a
     typed error instead of silently poisoning the resumed run. *)
  let load_ckpt ~path ~fp =
    match
      (Codec.read_file ~path ~version:ckpt_version
        : (ckpt, Codec.error) result)
    with
    | Error e -> Error e
    | Ok c ->
      if c.ck_fp <> fp then
        Error
          (Codec.Params_mismatch
             (Printf.sprintf "checkpoint {%s} vs campaign {%s}"
                (fp_describe c.ck_fp) (fp_describe fp)))
      else begin
        let pool = Packed.of_pools ~n:fp.fp_n c.ck_states c.ck_msgs in
        let verify (ih, b, _) =
          Codec.bytes_hash b = ih
          &&
          match Packed.decode pool b with
          | cfg -> Bytes.equal (Packed.encode pool cfg) b
          | exception _ -> false
        in
        if Array.for_all verify c.ck_visited then Ok (c, pool)
        else Error (Codec.Corrupt "stored state hashes do not re-verify")
      end

  (* ---------------------------------------------------------------- *)
  (* Parallel / checkpointed exploration                               *)
  (* ---------------------------------------------------------------- *)

  (* The coordinator walks the DFS prefix up to [spawn_depth] against
     the shared striped visited table, queuing every would-be
     expansion at the frontier as a task; [jobs] domains then run the
     queued expansions to completion over the same table.

     Equivalence with the sequential run (same verdict, same
     [distinct_states] on non-truncated explorations) holds because
     both are order-independent: a state enters the table the first
     time any path reaches it, memo absorption only ever cuts a visit
     whose (depth budget, drop budget, sleep set) coverage is
     dominated by coverage some other visit has walked or will walk,
     and sleep sets prune transitions covered by a sibling's subtree —
     none of which depends on which worker arrives first. The
     interleaving-dependent quantities ([transitions], [dedup_hits],
     [self_loops], [sleep_skipped], [depth_leaves]) do vary across
     runs at [jobs > 1]; [decided_leaves] does not (one per distinct
     decided state, counted at insertion). When a violation exists,
     every order finds one — but possibly a different one, so only
     the verdict is pinned for violating workloads. Per-node table
     work is one stripe lock per lookup; property evaluation runs
     outside the lock with a double-checked re-lookup before
     insertion.

     Checkpointing rides on the task queue: tasks are processed in
     chunks, and a checkpoint — the Codec container holding the
     fingerprint, the packed pools, the visited export, the task
     queue and the cursor — is written only at chunk boundaries,
     after [Pool.run] has joined. At a boundary every claim in the
     memo table is fulfilled (each inserted entry's coverage has been
     fully walked), which is what makes resuming sound: a resumed run
     re-enters the same order-independent fixpoint and reproduces the
     uninterrupted verdict and distinct-state count exactly. For the
     same reason the [max_states] budget is, in checkpointed mode,
     enforced at boundaries only (a mid-task abort would leave
     unfulfilled claims in the saved table) — the overshoot is
     bounded by one chunk's subtrees, and the budget is cumulative
     across segments via the restored id watermark. *)
  let run_engine ~reduction ~dedup ~delivery ~max_states ~max_drops ~jobs
      ~checkpoint ~resume ~spill_dir ~stop ~n ~menu ~depth ~inputs ~props () =
    let t0 = Sim.Clock.now () in
    let lossy = menu.Menu.lossy in
    let menus = Array.init n (fun p -> menu.Menu.values p) in
    let sleep = reduction <> No_reduction in
    let dpor = reduction = Dpor in
    let visited : Cov.entry Shared.t = Shared.create ~stripes:64 65536 in
    (match spill_dir with
    | Some d -> Shared.set_spill_dir visited d
    | None -> ());
    let ckpt_mode =
      checkpoint <> None || resume <> None || spill_dir <> None
    in
    let fp =
      fingerprint ~reduction ~dedup ~delivery ~max_drops ~n ~menu ~depth
        ~inputs
    in
    let resumed =
      match resume with
      | None -> None
      | Some path -> (
        match load_ckpt ~path ~fp with
        | Error e -> raise (Resume_rejected e)
        | Ok (c, pool) -> Some (c, pool))
    in
    let pool =
      match resumed with Some (_, p) -> p | None -> Packed.create ~n
    in
    let hconfig cfg =
      Intern.hashed Codec.bytes_hash (Packed.encode pool cfg)
    in
    let violation = Atomic.make None in
    let truncated = Atomic.make false in
    let halt = Atomic.make false in
    (* per-worker counters, slot 0 = the coordinator's prefix walk —
       and, on a resume, the restored cumulative totals of the prior
       segments, so the final sums span the whole campaign *)
    let nw = jobs + 1 in
    let counters () = Array.init nw (fun _ -> ref 0) in
    let transitions = counters ()
    and dedup_hits = counters ()
    and self_loops = counters ()
    and sleep_skipped = counters ()
    and races = counters ()
    and backtracks = counters ()
    and decided_leaves = counters ()
    and depth_leaves = counters ()
    and max_depths = counters () in
    (match resumed with
    | None -> ()
    | Some (c, _) ->
      Shared.import visited
        (Array.map
           (fun (ih, b, e) ->
             (Intern.hashed (fun (_ : Bytes.t) -> ih) b, e))
           c.ck_visited);
      transitions.(0) := c.ck_counts.(0);
      dedup_hits.(0) := c.ck_counts.(1);
      self_loops.(0) := c.ck_counts.(2);
      sleep_skipped.(0) := c.ck_counts.(3);
      races.(0) := c.ck_counts.(4);
      backtracks.(0) := c.ck_counts.(5);
      decided_leaves.(0) := c.ck_counts.(6);
      depth_leaves.(0) := c.ck_counts.(7);
      max_depths.(0) := c.ck_counts.(8));
    (* per-worker no-op caches: redundant discovery across domains
       instead of a shared locked table — the cache is a pure
       memo of [A.step], so divergence between workers only costs
       repeated first encounters, never soundness *)
    let noops =
      Array.init nw (fun _ ->
          (Hashtbl.create 1024
            : (Pid.t * A.state * Sim.Fd_value.t, unit) Hashtbl.t))
    in
    let spawn_depth = max 1 (min 2 (depth - 1)) in
    let stopped cfg =
      match stop with Some f -> f (fun p -> cfg.states.(p)) | None -> false
    in
    let check_props cfg path_rev =
      List.iter
        (fun pr ->
          match pr.prop_check (fun p -> cfg.states.(p)) with
          | Ok () -> ()
          | Error d -> raise (Found (pr.prop_name, d, List.rev path_rev)))
        props
    in
    let frontier = ref [] in
    (* [sink]: the coordinator's prefix walk queues frontier
       expansions instead of performing them; workers ([sink=false])
       expand in place. A queued task resumes exactly at the
       expansion step — its node is already in the table, claiming
       the coverage the task will perform. *)
    let rec expand ~w ~sink cfg remaining drops slept path_rev =
      if sink && depth - remaining >= spawn_depth then
        frontier := (cfg, remaining, drops, slept, path_rev) :: !frontier
      else begin
        let all =
          moves_of ~n ~delivery ~lossy:(lossy && drops > 0) ~menus cfg
        in
        let sl = Sibs.of_list ~n slept in
        let ex = Sibs.create ~n in
        List.iter
          (fun mv ->
            if sleep && Sibs.mem ~n sl mv then incr sleep_skipped.(w)
            else if
              dpor
              && mv.m_recv = None
              && Hashtbl.mem noops.(w)
                   (mv.m_pid, cfg.states.(mv.m_pid), mv.m_fd)
            then incr self_loops.(w)
            else begin
              let child = apply ~n cfg mv in
              incr transitions.(w);
              if child.states = cfg.states && child.chans = cfg.chans then begin
                incr self_loops.(w);
                if dpor && mv.m_recv = None then
                  Hashtbl.replace noops.(w)
                    (mv.m_pid, cfg.states.(mv.m_pid), mv.m_fd)
                    ()
              end
              else begin
                let child_slept =
                  inherit_slept ~reduction ~lossy ~races:races.(w)
                    ~backtracks:backtracks.(w) ~n ~explored:ex ~slept:sl mv
                in
                pdfs ~w ~sink child (remaining - 1)
                  (if mv.m_drop then drops - 1 else drops)
                  child_slept (mv :: path_rev);
                if sleep then Sibs.add ~n ex mv
              end
            end)
          all
      end
    and pdfs ~w ~sink cfg remaining drops slept path_rev =
      if Atomic.get halt then raise Limit;
      if depth - remaining > !(max_depths.(w)) then
        max_depths.(w) := depth - remaining;
      let hc = hconfig cfg in
      (* the same domination/update logic as the sequential walker,
         run under the stripe lock so the entry mutation is atomic *)
      let revisit e =
        match Cov.revisit e ~remaining ~drops ~slept with
        | `Absorbed -> `Absorbed
        | `Expand slept' -> `Expand slept'
      in
      let act = function
        | `Absorbed -> incr dedup_hits.(w)
        | `Expand slept' ->
          if remaining > 0 then expand ~w ~sink cfg remaining drops slept' path_rev
          else incr depth_leaves.(w)
        | `Known ->
          (* dedup off: nothing is absorbed; re-explore the revisit *)
          if stopped cfg then incr decided_leaves.(w)
          else if remaining = 0 then incr depth_leaves.(w)
          else expand ~w ~sink cfg remaining drops slept path_rev
        | `Decided -> incr decided_leaves.(w)
        | `Inserted ->
          if remaining = 0 then incr depth_leaves.(w)
          else expand ~w ~sink cfg remaining drops slept path_rev
        | `Full ->
          Atomic.set truncated true;
          Atomic.set halt true;
          raise Limit
      in
      let first =
        Shared.with_key visited hc (fun bound ->
            match bound with
            | Some e when dedup -> (revisit e, None)
            | Some _ -> (`Known, None)
            | None -> (`Fresh, None))
      in
      match first with
      | `Fresh ->
        (* Property and goal evaluation run outside the stripe lock;
           the second, double-checked lookup re-examines the binding a
           racing worker may have created in between. In checkpointed
           mode the budget is enforced at chunk boundaries instead —
           a mid-task abort would leave unfulfilled coverage claims in
           the saved table. *)
        if (not ckpt_mode) && Shared.length visited >= max_states then
          act `Full
        else begin
          check_props cfg path_rev;
          let decided = stopped cfg in
          act
            (Shared.with_key visited hc (fun bound ->
                 match bound with
                 | Some e when dedup -> (revisit e, None)
                 | Some _ -> (`Known, None)
                 | None ->
                   if (not ckpt_mode) && Shared.length visited >= max_states
                   then (`Full, None)
                   else if decided then (`Decided, Some (Cov.goal ()))
                   else (`Inserted, Some (Cov.make ~remaining ~drops ~slept))))
        end
      | (`Absorbed | `Expand _ | `Known) as a -> act a
    in
    (* a violation aborts everything; first recorded one wins *)
    let guard f =
      try f () with
      | Limit -> ()
      | Found (prop, detail, moves) ->
        ignore (Atomic.compare_and_set violation None (Some (prop, detail, moves)));
        Atomic.set halt true
    in
    let root = initial_config ~n ~inputs in
    (* a resumed run never re-walks the prefix: its frontier queue and
       cursor come from the checkpoint, its prefix states from the
       imported visited set *)
    let tasks, start =
      match resumed with
      | Some (c, _) -> (c.ck_tasks, c.ck_next)
      | None ->
        guard (fun () -> pdfs ~w:0 ~sink:true root depth max_drops [] []);
        (Array.of_list (List.rev !frontier), 0)
    in
    let ntasks = Array.length tasks in
    let sum a = Array.fold_left (fun acc r -> acc + !r) 0 a in
    let maxi a = Array.fold_left (fun acc r -> max acc !r) 0 a in
    let snapshot () =
      [|
        sum transitions; sum dedup_hits; sum self_loops; sum sleep_skipped;
        sum races; sum backtracks; sum decided_leaves; sum depth_leaves;
        maxi max_depths;
      |]
    in
    let last_ckpt = ref (Shared.length visited) in
    let write_ckpt next =
      match checkpoint with
      | None -> ()
      | Some (path, _) ->
        let vis =
          Array.map
            (fun ((k : Bytes.t Intern.hashed), e) ->
              (k.Intern.ih, k.Intern.iv, e))
            (Shared.export visited)
        in
        let sp, mp = Packed.export_pools pool in
        Codec.write_file ~path ~version:ckpt_version
          {
            ck_fp = fp;
            ck_states = sp;
            ck_msgs = mp;
            ck_visited = vis;
            ck_tasks = tasks;
            ck_next = next;
            ck_counts = snapshot ();
          };
        last_ckpt := Shared.length visited
    in
    let run_task ~worker i =
      if not (Atomic.get halt) then begin
        let cfg, remaining, drops, slept, path_rev = tasks.(i) in
        guard (fun () ->
            expand ~w:(worker + 1) ~sink:false cfg remaining drops slept
              path_rev)
      end
    in
    (if not ckpt_mode then
       Pool.run ~jobs ntasks (fun ~worker i -> run_task ~worker i)
     else begin
       (* Chunked driver: budget check, then a joined chunk of tasks,
          then (possibly) a checkpoint and a spill — always at a
          boundary where every memo claim is fulfilled. At [jobs = 1]
          the chunks run inline in task order, so a resumed campaign
          is counter-for-counter identical to a straight-through one;
          at [jobs > 1] the order-independent quantities (verdict,
          distinct states, decided leaves) are identical and the rest
          varies as it already does across parallel runs. *)
       let chunk = max 1 (4 * jobs) in
       let next = ref start in
       let continue = ref true in
       while !continue && !next < ntasks do
         if Shared.length visited >= max_states then begin
           (* cumulative: the imported watermark counts prior
              segments, so resuming a truncated campaign under the
              same budget truncates again immediately *)
           Atomic.set truncated true;
           continue := false;
           write_ckpt !next
         end
         else begin
           let lo = !next in
           let hi = min ntasks (lo + chunk) in
           Pool.run ~jobs (hi - lo) (fun ~worker j -> run_task ~worker (lo + j));
           next := hi;
           if Atomic.get violation <> None || Atomic.get halt then
             continue := false
           else begin
             (match checkpoint with
             | Some (_, every) when Shared.length visited - !last_ckpt >= every
               ->
               write_ckpt !next
             | _ -> ());
             match spill_dir with
             | Some _ -> Shared.spill visited
             | None -> ()
           end
         end
       done;
       (* completed exhaustively: record the final cursor, so resuming
          a finished checkpoint reports completion instead of re-work *)
       if
         !next >= ntasks
         && Atomic.get violation = None
         && not (Atomic.get truncated)
       then write_ckpt ntasks
     end);
    let stats =
      {
        transitions = sum transitions;
        distinct_states = Shared.length visited;
        dedup_hits = sum dedup_hits;
        self_loops = sum self_loops;
        sleep_skipped = sum sleep_skipped;
        races = sum races;
        backtracks = sum backtracks;
        decided_leaves = sum decided_leaves;
        depth_leaves = sum depth_leaves;
        max_depth = maxi max_depths;
        truncated = Atomic.get truncated;
        (* one monotonic-clock read on the coordinating domain — never
           a sum of per-domain spans *)
        wall_seconds = Sim.Clock.elapsed t0;
      }
    in
    finish ~n ~inputs ~stats (Atomic.get violation)

  let run ?(reduction = Sleep_sets) ?(dedup = true) ?(delivery = `Fifo)
      ?(max_states = 2_000_000) ?(max_drops = max_int) ?(jobs = 1) ?checkpoint
      ?resume ?spill_dir ?stop ~n ~menu ~depth ~inputs ~props () =
    (* any checkpoint-related option routes through the chunked
       engine, even at [jobs = 1]: checkpoints need the task queue *)
    if
      jobs <= 1 && checkpoint = None && resume = None && spill_dir = None
    then
      run_seq ~reduction ~dedup ~delivery ~max_states ~max_drops ~stop ~n
        ~menu ~depth ~inputs ~props ()
    else
      run_engine ~reduction ~dedup ~delivery ~max_states ~max_drops
        ~jobs:(max 1 jobs) ~checkpoint ~resume ~spill_dir ~stop ~n ~menu
        ~depth ~inputs ~props ()

  let replay_counterexample ~n ~inputs cx = R.replay ~n ~inputs cx.cx_steps

  (* The abstract schedule space behind [run], exposed so randomized
     exploration ([lib/explore]) samples the exact move alphabet this
     checker enumerates: a fuzzer finding cannot be an artifact of a
     different network or detector model, and a fuzz counterexample
     concretizes through the same [concretize] the checker certifies
     with. *)
  module Space = struct
    type nonrec config = config

    let initial = initial_config
    let state cfg p = cfg.states.(p)
    let equal = config_equal
    let key cfg = config_hash cfg
    let enabled = moves_of

    let applicable ~n cfg mv =
      match mv.m_recv with
      | None -> not mv.m_drop
      | Some (src, i) ->
        ((not mv.m_drop) || not (Pid.equal src mv.m_pid))
        && i >= 0
        && i < List.length cfg.chans.((src * n) + mv.m_pid)

    let apply = apply
    let concretize = concretize
  end

  let pp_replay_step fmt (s : R.replay_step) =
    (match s.R.r_received with
    | None -> Format.fprintf fmt "p%d receives lambda" s.R.r_pid
    | Some env ->
      Format.fprintf fmt "p%d receives p%d->p%d#%d %a" s.R.r_pid
        env.Sim.Envelope.src env.Sim.Envelope.dst env.Sim.Envelope.seq
        A.pp_message env.Sim.Envelope.payload);
    Format.fprintf fmt ", fd = %a" Sim.Fd_value.pp s.R.r_fd

  let pp_counterexample fmt cx =
    Format.fprintf fmt "@[<v>violates %s: %s@,schedule (%d steps):@,"
      cx.cx_property cx.cx_detail (List.length cx.cx_steps);
    List.iteri
      (fun i s -> Format.fprintf fmt "  t=%-3d %a@," (i + 1) pp_replay_step s)
      cx.cx_steps;
    (match List.length (List.filter (fun m -> m.m_drop) cx.cx_moves) with
    | 0 -> ()
    | k ->
      Format.fprintf fmt
        "  (plus %d message%s dropped by the network along the way)@," k
        (if k = 1 then "" else "s"));
    Format.fprintf fmt "@]"
end
