(* Memo-coverage records for the bounded model checker.

   A visited state's memo entry records the exploration coverage the
   checker has actually walked from that state: the depth budget it
   had, the loss budget it had, and the sleep set it expanded under.
   A revisit is absorbed only when the stored coverage dominates the
   revisit's — otherwise the revisit re-expands under the
   *intersection* of the two sleep sets (sound for both visits), and
   the entry is updated only when the coverage just walked dominates
   the stored one in both budgets.

   The no-mixture rule is the load-bearing invariant: the entry must
   always describe one exploration that actually happened. Recording
   a max-of-budgets / intersected-sleep-set mixture of two visits
   would claim coverage neither visit walked and absorb later visits
   whose schedules were never explored (the PR-2 review bug). Keeping
   the record in its own module, behind [revisit], is what lets the
   DPOR backtrack bookkeeping compose with memoization without
   re-opening that hole: every caller goes through the same
   domination/update logic. *)

module type MOVE = sig
  type t

  val equal : t -> t -> bool
end

module Make (M : MOVE) = struct
  type entry = {
    mutable remaining : int;
    mutable drops : int;
        (* drop budget left at the recorded visit; coverage is
           monotone in it exactly as in [remaining] *)
    mutable slept : M.t list;
  }

  let make ~remaining ~drops ~slept = { remaining; drops; slept }

  (* Goal (all-decided) states are never expanded at any budget:
     infinite coverage, empty sleep set, absorbs every revisit. *)
  let goal () = { remaining = max_int; drops = max_int; slept = [] }

  let remaining e = e.remaining
  let drops e = e.drops
  let slept e = e.slept

  let subset a b = List.for_all (fun m -> List.exists (M.equal m) b) a

  (* [dominates e ~remaining ~drops ~slept]: the stored coverage
     includes everything a visit with these budgets and this sleep set
     would walk — at least as much depth, at least as much loss
     budget, and a sleep set that prunes no move the revisit would
     prune less (stored ⊆ revisit's). *)
  let dominates e ~remaining ~drops ~slept =
    e.remaining >= remaining && e.drops >= drops && subset e.slept slept

  let inter a b = List.filter (fun m -> List.exists (M.equal m) a) b

  let revisit e ~remaining ~drops ~slept =
    if dominates e ~remaining ~drops ~slept then `Absorbed
    else begin
      let slept' = inter e.slept slept in
      if remaining >= e.remaining && drops >= e.drops then begin
        (* the coverage about to be walked dominates the stored one in
           both budgets: the entry may describe it (and only it) *)
        e.remaining <- remaining;
        e.drops <- drops;
        e.slept <- slept'
      end;
      `Expand slept'
    end
end
