(** Memo-coverage records for the bounded model checker.

    One entry per visited canonical state, recording the exploration
    coverage actually walked from it: remaining depth budget,
    remaining loss budget, and the sleep set expanded under. All
    absorption and update decisions go through {!Make.revisit}, which
    enforces the {e no-mixture rule}: an entry always describes one
    exploration that actually happened — never a max-budget /
    intersected-sleep-set combination of two visits, which would
    absorb later revisits whose schedules were never walked. *)

module type MOVE = sig
  type t

  val equal : t -> t -> bool
end

module Make (M : MOVE) : sig
  type entry

  val make : remaining:int -> drops:int -> slept:M.t list -> entry
  (** A fresh entry for a state first visited with these budgets and
      this sleep set. *)

  val goal : unit -> entry
  (** The entry for a goal (all-decided) state: infinite budgets and
      an empty sleep set, so it absorbs every revisit — stopped
      states are never expanded. *)

  val remaining : entry -> int
  val drops : entry -> int
  val slept : entry -> M.t list

  val dominates :
    entry -> remaining:int -> drops:int -> slept:M.t list -> bool
  (** Whether the stored coverage includes everything a visit with
      these budgets and this sleep set would walk: at least as much
      remaining depth, at least as much loss budget, and a stored
      sleep set included in the revisit's (pruning no more). *)

  val revisit :
    entry ->
    remaining:int ->
    drops:int ->
    slept:M.t list ->
    [ `Absorbed | `Expand of M.t list ]
  (** The revisit decision, mutating the entry in place.
      [`Absorbed] when {!dominates} holds. Otherwise
      [`Expand slept'] where [slept'] is the intersection of the
      stored and current sleep sets — sound for both visits — and the
      entry is updated to [(remaining, drops, slept')] only when both
      current budgets dominate the stored ones (the coverage about to
      be walked then includes the stored coverage, so the entry still
      describes a walked exploration). Callers running under a lock
      (the parallel checker) get atomicity of the decision and the
      update for free. *)
end
