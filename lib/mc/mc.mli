(** Bounded model checking: exhaustive exploration of all admissible
    schedules of a [Sim.Automaton] for small universes.

    The walker explores every interleaving of (process scheduling,
    message-delivery choice, failure-detector value from a per-process
    menu) up to a depth bound, deduplicating confluent interleavings by
    canonical-state memoization and pruning commuting step pairs with
    sleep sets; safety properties are evaluated at every distinct
    reachable state. A violating schedule is re-executed concretely
    into a [Runner.replay]-compatible trace. See DESIGN.md for the
    state encoding, the pruning soundness argument and the depth-bound
    semantics. *)

open Procset

module Intern : module type of Intern
(** Cached-hash interning tables: hash a canonical state once, reuse
    the hash for every later lookup; the striped variant is the
    parallel checker's shared visited set (with optional disk spill of
    cold stripes). *)

module Codec : module type of Codec
(** Byte-level primitives of the packed canonical-state encoding and
    the validated checkpoint container (varints, interning pools,
    [bytes_hash], [write_file]/[read_file]). *)

module Pool : module type of Sim.Pool
(** The hand-rolled domain pool behind [run ~jobs] and the parallel
    fuzzer. *)

exception Resume_rejected of Codec.error
(** Raised by [Make.run ~resume] (and [Explore.Make.fuzz ~resume])
    when the checkpoint file fails validation: bad magic, unsupported
    schema version, payload digest mismatch, a fingerprint from a
    different campaign, or stored state hashes that do not re-verify.
    Never a [Marshal] crash. *)

module Cover : module type of Cover
(** Memo-coverage records (budgets + sleep set): the
    domination/absorption logic behind memoization, in one place so
    the DPOR backtrack bookkeeping cannot re-entangle with it. *)

module Menu : sig
  (** Finite failure-detector menus: at every step the adversary gives
      a process any value from its menu. A menu is admissible for its
      detector class when every combination of choices satisfies the
      class's perpetual clauses; the eventual clauses constrain no
      finite prefix. *)

  type kind = Sigma | Sigma_nu | Sigma_nu_plus | Omega_only | Suspects_menu

  type t = {
    name : string;
    kind : kind;
    values : Pid.t -> Sim.Fd_value.t list;
    lossy : bool;
        (** when set, [Make.run] additionally lets the network drop
            the deliverable message of any cross-process channel at
            every transition (see {!lossy}) *)
  }

  val omega_sigma_nu : n:int -> faulty:Pset.t -> t
  (** [(Leader, Quorum)] pairs legal for [(Omega, Sigma-nu)]: correct
      processes trust any correct leader and output pairwise-
      intersecting quorums ([C] or [{p} ∪ F]); faulty processes may
      output all-faulty quorums. This family contains the Section 6.3
      contamination histories. *)

  val omega_sigma_nu_plus : n:int -> faulty:Pset.t -> t
  (** The same family, which also satisfies self-inclusion and
      conditional nonintersection — legal for [(Omega, Sigma-nu+)]. *)

  val omega_sigma : n:int -> faulty:Pset.t -> t
  (** Uniformly intersecting quorums through a correct pivot — legal
      for [(Omega, Sigma)]. *)

  val contamination :
    ?plus:bool ->
    ?quorum:Procset.Quorum_family.t ->
    n:int ->
    faulty:Pset.t ->
    unit ->
    t
  (** The focused Sigma-nu sub-family behind the Section 6.3
      contamination argument: the lowest correct process pinned to
      (its own leadership, the correct set), the other correct
      processes free to switch between the correct set and their own
      [{p} ∪ F], faulty processes seeing themselves. Legal for
      [(Omega, Sigma-nu)] — and, every quorum containing its owner,
      for [(Omega, Sigma-nu+)] when [plus] is set (the kind checked by
      {!validate}). Small enough that exhaustive exploration reaches
      the depth at which decisions — and the naive baseline's
      contaminated decisions — occur.

      With [?quorum], the correct set is generalized to the family's
      minimal quorums (owner added — families are monotone), grown
      inside the correct set when it is itself a quorum and inside
      [Pi] otherwise; every correct process (c0 included — some
      families leave the escape as the only contamination channel)
      gets the [{p} ∪ F] escape exactly where it stays
      Sigma-nu-legal (every offered family quorum contains [p] or
      touches [F]). [None] (the default) is the unparameterized
      construction, bit-for-bit. *)

  val lossy :
    ?plus:bool ->
    ?quorum:Procset.Quorum_family.t ->
    n:int ->
    faulty:Pset.t ->
    unit ->
    t
  (** The {!contamination} family over lossy links: identical
      detector menus, plus a network adversary that may silently
      discard the deliverable message of any cross-process channel at
      each transition. Under FIFO links arbitrary loss makes each
      channel's delivered sequence exactly a subsequence of its send
      sequence, and the per-head deliver-or-drop choice generates
      every subsequence — so the exploration stays exhaustive for the
      lossy network model. The schedule space strictly contains the
      loss-free one; detector legality ({!validate}) is unchanged. *)

  val leader_only : n:int -> faulty:Pset.t -> t
  (** Bare [Leader] values (for MR-majority). *)

  val suspects : n:int -> faulty:Pset.t -> t
  (** [Suspects] menus for [<>S]-driven algorithms (CT): the adversary
      may suspect nobody, exactly the faulty set, or additionally one
      correct process. *)

  val validate : pattern:Sim.Failure_pattern.t -> t -> (unit, string) result
  (** Certifies menu admissibility by checking the detector class's
      perpetual clauses ({!Fd.Check.intersection},
      {!Fd.Check.self_inclusion},
      {!Fd.Check.conditional_nonintersection}) over the dense history
      containing every menu value — which dominates every history an
      exploration can sample. [pattern] must be the failure pattern the
      exploration runs under (the same one given to {!history_legal}),
      so the certificate and the run refer to one pattern. *)
end

val history_legal :
  kind:Menu.kind ->
  pattern:Sim.Failure_pattern.t ->
  (Pid.t * int * Sim.Fd_value.t) list ->
  (unit, string) result
(** Checks the detector samples of one concrete explored run against
    the perpetual clauses of the class — the finite-prefix fragment of
    admissibility, as in [Core.Scenario]'s history validation. *)

type reduction = No_reduction | Sleep_sets | Dpor
(** Transition-pruning reductions, all state-preserving (same verdict
    and [distinct_states]; pinned by the differential battery in
    test_dpor.ml):

    - [No_reduction]: every enabled move expanded everywhere.
    - [Sleep_sets] (the default): pid-disjointness sleep sets — after
      a move by process [p], earlier siblings and inherited sleepers
      with a different pid stay asleep; drop moves are never slept.
    - [Dpor]: happens-before sleep inheritance over the full
      independence relation ([Make.move_dependent]) — a sleeper is
      woken only by a move it actually races with (same process, or
      same channel for drops), drop moves are slept too, and known
      no-op lambda steps are skipped at move generation. Detected
      races and woken sleepers (the DPOR backtrack points) are
      reported in [stats.races] / [stats.backtracks]. *)

val pp_reduction : Format.formatter -> reduction -> unit
(** ["none"], ["sleep"] or ["dpor"] — the [--reduction] spelling. *)

type stats = {
  transitions : int;  (** edges taken (including into already-seen states) *)
  distinct_states : int;  (** canonical states after deduplication *)
  dedup_hits : int;
      (** transitions absorbed by memoization (0 when [dedup] is off) *)
  self_loops : int;
      (** transitions skipped because child = parent; under [Dpor]
          this includes cached no-op lambda skips, which do not count
          as [transitions] *)
  sleep_skipped : int;  (** moves pruned by sleep sets *)
  races : int;
      (** [Dpor] only: dependent (taken move, sleeping candidate)
          pairs detected during sleep-set inheritance; 0 otherwise *)
  backtracks : int;
      (** [Dpor] only: inherited sleepers woken by a race — the
          backtrack points re-inserted into the sibling exploration;
          0 otherwise *)
  decided_leaves : int;  (** states where [stop] held, not expanded *)
  depth_leaves : int;  (** states truncated by the depth bound *)
  max_depth : int;
  truncated : bool;  (** hit [max_states]; exploration incomplete *)
  wall_seconds : float;
}
(** Exploration statistics; shared by every {!Make} instantiation. *)

val states_per_sec : stats -> float
val pp_stats : Format.formatter -> stats -> unit

module Make (A : Sim.Automaton.S) : sig
  module R : module type of Sim.Runner.Make (A)

  type move = {
    m_pid : Pid.t;  (** the process taking the step *)
    m_fd : Sim.Fd_value.t;  (** the detector value it sees *)
    m_recv : (Pid.t * int) option;
        (** [Some (src, i)]: deliver the [i]-th pending message of the
            [src -> m_pid] channel; [None]: receive lambda *)
    m_drop : bool;
        (** lossy-menu network move: the message designated by
            [m_recv] is discarded instead of delivered — no process
            steps, no detector value is sampled ([m_fd] is [Unit]),
            and the concretized trace contains no step for it *)
  }

  val move_dependent : move -> move -> bool
  (** The static dependence (non-commutation) relation over the move
      alphabet — the happens-before core of the [Dpor] reduction. Two
      moves are independent ([move_dependent a b = false]) when, from
      any configuration enabling both, executing them in either order
      yields the same configuration and neither disables the other:
      two non-drop moves are dependent iff they step the same
      process; a drop is dependent with exactly the moves that
      consume from its channel (another drop of the same channel, or
      the delivery of it). The fault verdict of a drop is part of the
      move itself (its channel and index — the abstraction of
      [Sim.Faults]' [(src, dst, seq, time)] keys), so there is no
      hidden verdict state to race on. Symmetric, and reflexive
      (every move is dependent with itself — in particular two moves
      on the same channel are never independent). *)

  val trace_key : move list -> int
  (** Canonical Mazurkiewicz-trace key: schedules that differ only by
      swaps of adjacent independent moves (under {!move_dependent})
      hash to the same key. Computed by greedily linearizing the
      schedule's dependence DAG by minimal move and hashing the
      resulting label sequence; O(length²). Used by [lib/explore] to
      deduplicate fuzz coverage up to commutation, and by the
      independence property tests. *)

  type property = {
    prop_name : string;
    prop_check : (Pid.t -> A.state) -> (unit, string) result;
  }
  (** A safety property, evaluated at every distinct reachable
      state. *)

  val invariant :
    name:string ->
    ((Pid.t -> A.state) -> (unit, string) result) ->
    property
  (** A user-supplied invariant. *)

  val consensus_props :
    decision:(A.state -> Consensus.Value.t option) ->
    proposals:(Pid.t -> Consensus.Value.t) ->
    flavour:Consensus.Spec.flavour ->
    pattern:Sim.Failure_pattern.t ->
    property list
  (** Validity and (uniform or nonuniform) agreement over the
      decisions visible in a configuration, via {!Consensus.Spec}. *)

  val decided_stop :
    decision:(A.state -> 'v option) ->
    scope:Pset.t ->
    (Pid.t -> A.state) ->
    bool
  (** Goal predicate: every process of [scope] has decided. Stopped
      states are never expanded, so [scope] must contain every process
      whose decision the checked properties constrain: the correct set
      for nonuniform agreement, but [Pset.full] for uniform agreement —
      with a correct-only scope a faulty process could decide a
      conflicting value in a pruned continuation. *)

  type counterexample = {
    cx_property : string;
    cx_detail : string;
    cx_moves : move list;
    cx_steps : R.replay_step list;
    cx_samples : (Pid.t * int * Sim.Fd_value.t) list;
    cx_states : A.state array;
  }

  type report = { stats : stats; violation : counterexample option }

  val run :
    ?reduction:reduction ->
    ?dedup:bool ->
    ?delivery:[ `Fifo | `Any ] ->
    ?max_states:int ->
    ?max_drops:int ->
    ?jobs:int ->
    ?checkpoint:string * int ->
    ?resume:string ->
    ?spill_dir:string ->
    ?stop:((Pid.t -> A.state) -> bool) ->
    n:int ->
    menu:Menu.t ->
    depth:int ->
    inputs:(Pid.t -> A.input) ->
    props:property list ->
    unit ->
    report
  (** [run ~n ~menu ~depth ~inputs ~props ()] explores every schedule
      of at most [depth] steps. [reduction] (default [Sleep_sets])
      picks the transition-pruning reduction (see {!reduction}); all
      three yield the same verdict and the same [distinct_states],
      with [Dpor] taking the fewest transitions. [dedup] (default
      true) enables canonical-state
      memoization; [delivery] (default [`Fifo]) picks the channel
      model: [`Fifo] delivers each (src, dst) channel in send order —
      the standard FIFO-link network model, under which the exploration
      is exhaustive; [`Any] additionally explores every per-channel
      reordering the runner's [Matching] latitude allows, at a steep
      state-space cost; [max_states] (default 2e6) aborts exploration
      (the report is marked [truncated]); [stop] marks goal states that
      are recorded but not expanded. Returns the first property violation
      found, with its concrete schedule, or [None] after exhausting the
      bounded space.

      When [menu.lossy] is set, every transition additionally offers
      the network moves described at {!Menu.lossy}; a drop consumes
      one unit of [depth] like any other move. The loss-free subtree
      is explored first, so a loss-free counterexample is found
      before any lossy one. [max_drops] (default unlimited) bounds the
      number of drops {e per schedule}: exploration is then exhaustive
      for the runs in which the network loses at most [max_drops]
      messages — the loss-bounded analogue of the depth bound, which
      keeps deep lossy explorations tractable. The memoization entry
      tracks the remaining loss budget alongside the remaining depth,
      so absorption stays sound across paths that reach a state with
      different budgets.

      [jobs] (default 1) parallelizes the exploration over that many
      domains: the root frontier (depth-2 expansions) is fanned out
      over a striped shared visited table ({!Intern.Striped}), with
      sleep-set pruning kept per-worker. [jobs <= 1] is exactly the
      sequential walker. At [jobs > 1] the verdict and — on
      non-truncated explorations — [distinct_states] and
      [decided_leaves] equal the sequential run's (exploration order
      does not change which states are reachable within the bounds;
      pinned per menu family in test_mc.ml), while the
      interleaving-dependent counters ([transitions], [dedup_hits],
      [self_loops], [sleep_skipped], [races], [backtracks],
      [depth_leaves], [max_depth]) and
      the identity of the counterexample, when one exists, may vary.
      [wall_seconds] is always one monotonic-clock read on the
      coordinating domain, never a per-domain sum.

      [checkpoint:(path, every_n_states)] makes the campaign
      resumable: the run is driven through the parallel task queue
      (even at [jobs = 1], where it is deterministic) and a versioned
      snapshot — fingerprint, packed state/message pools, the visited
      set as packed bytes, the task queue and cursor, cumulative
      counters — is written to [path] (atomically, temp + rename)
      whenever at least [every_n_states] new distinct states have
      accumulated since the last write, always at a task-chunk
      boundary where every memoization claim is fulfilled. [resume]
      restores such a snapshot after full validation (raising
      {!Resume_rejected} otherwise) and continues from the cursor: a
      resumed campaign reproduces the uninterrupted run's verdict and
      [distinct_states] exactly, and its [max_states] budget is
      cumulative across segments (a truncated campaign resumed under
      the same budget truncates again immediately; [stats.truncated]
      reflects the whole campaign). In checkpointed mode the budget
      is enforced at chunk boundaries only, so the final state count
      may overshoot [max_states] by at most one chunk's subtrees.
      [spill_dir] additionally moves cold stripes of the visited set
      into [Codec]-container segment files under that directory at
      each boundary, bounding resident memory; spilled stripes reload
      transparently on access. *)

  val replay_counterexample :
    n:int ->
    inputs:(Pid.t -> A.input) ->
    counterexample ->
    (A.state array, string) result
  (** Validates the concrete counterexample trace with {!R.replay} —
      the independent applicability check of Lemma 2.2. *)

  val pp_replay_step : Format.formatter -> R.replay_step -> unit
  val pp_counterexample : Format.formatter -> counterexample -> unit

  (** The abstract schedule space behind {!run}, exposed for
      randomized exploration ([Explore]): abstract configurations,
      the enabled-move alphabet, move application, and the
      concretization that turns an abstract schedule into a
      [Runner.replay]-compatible trace. A sampler built on this space
      draws from exactly the schedules the checker enumerates, and
      its counterexamples carry the same certificate. *)
  module Space : sig
    type config
    (** Abstract configuration: per-process automaton states plus
        per-channel pending payloads — the canonical state {!run}
        memoizes on (no clock, no envelope metadata). *)

    val initial : n:int -> inputs:(Pid.t -> A.input) -> config
    val state : config -> Pid.t -> A.state

    val equal : config -> config -> bool
    (** Structural equality — in particular [equal (apply cfg mv) cfg]
        detects a self-loop move. *)

    val key : config -> int
    (** The canonical-state hash (the one memoization buckets on);
        collisions are possible, so it is a coverage statistic, not an
        identity. *)

    val enabled :
      n:int ->
      delivery:[ `Fifo | `Any ] ->
      lossy:bool ->
      menus:Sim.Fd_value.t list array ->
      config ->
      move list
    (** Every move admissible at [config] — exactly the alphabet
        {!run} expands: one move per (process, delivery choice or
        lambda, menu value), plus, when [lossy], one network-drop move
        per deliverable cross-process message. *)

    val applicable : n:int -> config -> move -> bool
    (** Whether the move's delivery choice designates a pending
        message of [config] (vacuously true for lambda moves) — the
        schedule-shrinking validity check. *)

    val apply : n:int -> config -> move -> config
    (** Applies one move. The move must be {!applicable}. *)

    val concretize :
      n:int ->
      inputs:(Pid.t -> A.input) ->
      move list ->
      R.replay_step list * (Pid.t * int * Sim.Fd_value.t) list * A.state array
    (** Re-executes an abstract schedule with real envelopes (runner
        sequence numbers, a global clock) into the
        [(replay steps, detector samples, final states)] triple that
        {!replay_counterexample} and {!history_legal} certify. *)
  end

  (** The packed canonical-state codec behind the visited set and the
      checkpoint files: distinct per-process states and distinct
      message payloads are interned into pools, and a configuration
      becomes a flat byte string of varint pool indices (process
      states in pid order, then the non-empty channels in canonical
      order with length-prefixed queues). Exposed for the B12 memory
      benchmark and the round-trip test battery; {!run} uses it
      internally. *)
  module Packed : sig
    type pool
    (** The interning pools (mutex-protected; parallel workers encode
        concurrently). *)

    val create : n:int -> pool

    val encode : pool -> Space.config -> Bytes.t
    (** Injective with respect to {!Space.equal} under one pool:
        [Bytes.equal (encode p a) (encode p b)] iff [Space.equal a b] —
        which is why distinct states (crafted hash collisions
        included) stay distinct in the packed visited set. *)

    val decode : pool -> Bytes.t -> Space.config
    (** Exact inverse of {!encode} on the same pool. Raises
        [Invalid_argument] on bytes the pool cannot decode. *)
  end
end
