(* Byte-level primitives behind the packed canonical-state encoding
   and the campaign checkpoint files.

   Three layers, all generic (the config-shaped encoding itself lives
   in [Mc.Make.Packed], because the config type is functor-local):

   - varints: LEB128 unsigned integers, the only number format the
     packed encoding uses — pool indices and channel lengths are
     small, so most fields cost one byte;
   - interning pools: structural-hash dictionaries mapping distinct
     values (process states, message payloads) to dense indices, with
     the inverse array for decoding. A campaign sees few distinct
     per-process states relative to distinct configurations, which is
     what makes index-per-slot encodings ~10x smaller than the heap
     graphs they replace;
   - the checkpoint container: magic + schema version + MD5 digest +
     [Marshal] payload, with every validation step (magic, version,
     digest) performed *before* [Marshal.from_bytes] ever runs, so a
     corrupt or stale file surfaces as a typed [error], never a
     segfault. *)

(* ---------------------------------------------------------------- *)
(* Hashing                                                           *)
(* ---------------------------------------------------------------- *)

(* FNV-1a over the whole byte string, folded to a nonnegative OCaml
   int. Unlike [Hashtbl.hash], this reads every byte: two packed
   states differing only deep inside a long channel still get
   different hashes with overwhelming probability — and when they do
   collide, [Bytes.equal] is the exact backstop. The offset basis is
   the 64-bit FNV one truncated to OCaml's 63-bit int range;
   multiplication wraps in native int arithmetic. *)
let bytes_hash (b : Bytes.t) =
  let h = ref 0x2bf29ce484222325 in
  for i = 0 to Bytes.length b - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x100000001b3
  done;
  !h land max_int

(* ---------------------------------------------------------------- *)
(* Varints                                                           *)
(* ---------------------------------------------------------------- *)

let write_varint buf n =
  if n < 0 then invalid_arg "Codec.write_varint: negative";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* [read_varint b pos] reads at [!pos], advancing it. Raises
   [Invalid_argument] past the end — callers decoding trusted,
   digest-verified bytes treat that as a programming error. *)
let read_varint b pos =
  let n = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let c = Char.code (Bytes.get b !pos) in
    incr pos;
    n := !n lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    if c land 0x80 = 0 then continue := false
  done;
  !n

(* ---------------------------------------------------------------- *)
(* Interning pools                                                   *)
(* ---------------------------------------------------------------- *)

module Pool = struct
  (* Distinct values to dense indices, first-seen order. The forward
     map is a structural-hash [Hashtbl] (OCaml's polymorphic hash on
     the same pure-data values the checker already hashes); two
     crafted hash-colliding values share a bucket but keep distinct
     indices, because bucket membership is resolved by structural
     equality — the same collision backstop as the interned tables
     (pinned in test_codec.ml). *)
  type 'a t = {
    ix : ('a, int) Hashtbl.t;
    mutable arr : 'a array;
    mutable len : int;
  }

  let create () = { ix = Hashtbl.create 256; arr = [||]; len = 0 }
  let length p = p.len

  let intern p v =
    match Hashtbl.find_opt p.ix v with
    | Some i -> i
    | None ->
      let i = p.len in
      if i >= Array.length p.arr then begin
        let cap = max 16 (2 * Array.length p.arr) in
        let arr = Array.make cap v in
        Array.blit p.arr 0 arr 0 p.len;
        p.arr <- arr
      end;
      p.arr.(i) <- v;
      p.len <- i + 1;
      Hashtbl.add p.ix v i;
      i

  let get p i =
    if i < 0 || i >= p.len then invalid_arg "Codec.Pool.get: bad index";
    p.arr.(i)

  let export p = Array.sub p.arr 0 p.len

  (* Rebuilds a pool whose indices are exactly the array positions —
     the resume path, where restored packed keys must keep decoding
     to the states they encoded. *)
  let import a =
    let p = create () in
    Array.iter (fun v -> ignore (intern p v : int)) a;
    p
end

(* ---------------------------------------------------------------- *)
(* Checkpoint container                                              *)
(* ---------------------------------------------------------------- *)

type error =
  | Bad_magic
  | Bad_version of int  (** version found in the file *)
  | Params_mismatch of string
      (** well-formed file for a different campaign (the caller's
          fingerprint check) *)
  | Corrupt of string

let pp_error fmt = function
  | Bad_magic -> Format.fprintf fmt "not a checkpoint file (bad magic)"
  | Bad_version v ->
    Format.fprintf fmt "unsupported checkpoint schema version %d" v
  | Params_mismatch d ->
    Format.fprintf fmt "checkpoint belongs to a different campaign: %s" d
  | Corrupt d -> Format.fprintf fmt "corrupt checkpoint: %s" d

let error_to_string e = Format.asprintf "%a" pp_error e

let magic = "NUCCKPT\n"

(* File layout: magic (8 bytes) | version (varint) | payload length
   (varint) | MD5 digest of the payload (16 bytes) | payload
   ([Marshal] of the caller's value). The write is atomic (temp file
   + rename), so a kill mid-write leaves the previous checkpoint
   intact rather than a truncated file. *)
let write_file ~path ~version v =
  let payload = Marshal.to_bytes v [] in
  let buf = Buffer.create (Bytes.length payload + 64) in
  Buffer.add_string buf magic;
  write_varint buf version;
  write_varint buf (Bytes.length payload);
  Buffer.add_string buf (Digest.bytes payload);
  Buffer.add_bytes buf payload;
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Buffer.output_buffer oc buf);
  Sys.rename tmp path

let read_file ~path ~version =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let b = Bytes.create len in
        really_input ic b 0 len;
        b)
  with
  | exception Sys_error d -> Error (Corrupt d)
  | exception End_of_file -> Error (Corrupt "truncated file")
  | b ->
    let mlen = String.length magic in
    if Bytes.length b < mlen || Bytes.sub_string b 0 mlen <> magic then
      Error Bad_magic
    else begin
      let pos = ref mlen in
      match
        let v = read_varint b pos in
        let plen = read_varint b pos in
        (v, plen)
      with
      | exception _ -> Error (Corrupt "truncated header")
      | v, _ when v <> version -> Error (Bad_version v)
      | _, plen ->
        if Bytes.length b - !pos <> 16 + plen then
          Error (Corrupt "payload length mismatch")
        else begin
          let digest = Bytes.sub_string b !pos 16 in
          let payload = Bytes.sub b (!pos + 16) plen in
          if Digest.bytes payload <> digest then
            Error (Corrupt "payload digest mismatch")
          else
            (* the digest matched, so these are the bytes [write_file]
               marshalled — [from_bytes] is safe to run *)
            match Marshal.from_bytes payload 0 with
            | v -> Ok v
            | exception _ -> Error (Corrupt "unreadable payload")
        end
    end
