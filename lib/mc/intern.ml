(* Canonical-state interning: hash once, then compare by cached hash
   and compact id.

   The model checker's memo table and the fuzzer's coverage tracker
   both bucket canonical states with [Hashtbl.hash_param 150 600] — a
   deep structural walk that a plain [Hashtbl] repeats on every
   [find_opt]/[add] pair (twice per fresh state). The types here make
   the hash part of the key: it is computed exactly once, when the
   key is built, and every later table operation reuses it. Equality
   prefilters on the cached hash before falling back to the caller's
   structural equality, which is the collision backstop — two
   distinct states with equal hashes stay distinct (pinned in
   test_mc.ml).

   [Striped] is the multicore variant: an N-way sharded table with a
   per-stripe mutex, the shared visited set of the parallel checker.
   Insertion order assigns compact ids from one atomic counter, so
   [length] — the checker's [distinct_states] — is an O(1) read of
   the id watermark, with no stripe lock held. *)

type 'a hashed = { ih : int; iv : 'a }

let hashed hash v = { ih = hash v; iv = v }

module type KEY = sig
  type t

  val equal : t -> t -> bool
end

module Table (K : KEY) = Hashtbl.Make (struct
  type t = K.t hashed

  let equal a b = a.ih = b.ih && K.equal a.iv b.iv
  let hash k = k.ih
end)

module Key_set = struct
  (* A set of already-hashed int keys (state hashes, shape hashes):
     identity hashing instead of [Hashtbl.hash]'s mixing pass, and a
     single membership probe per insertion attempt. *)
  module H = Hashtbl.Make (struct
    type t = int

    let equal = Int.equal
    let hash k = k land max_int
  end)

  type t = unit H.t

  let create n = H.create n
  let mem = H.mem

  let add_new t k =
    if H.mem t k then false
    else begin
      H.add t k ();
      true
    end

  let length = H.length
  let iter f t = H.iter (fun k () -> f k) t
end

module Striped (K : KEY) = struct
  module T = Table (K)

  type 'v t = {
    mask : int;
    locks : Mutex.t array;
    tables : 'v T.t array;
    count : int Atomic.t;  (* insertions so far = next compact id *)
  }

  let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

  let create ?(stripes = 64) cap =
    let s = pow2 (max 1 (min stripes 4096)) 1 in
    {
      mask = s - 1;
      locks = Array.init s (fun _ -> Mutex.create ());
      tables = Array.init s (fun _ -> T.create (max 16 (cap / s)));
      count = Atomic.make 0;
    }

  let length t = Atomic.get t.count

  let with_key t k f =
    let i = k.ih land t.mask in
    let m = t.locks.(i) in
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        let bound = T.find_opt t.tables.(i) k in
        let r, insert = f bound in
        (match (insert, bound) with
        | Some v, None ->
          T.add t.tables.(i) k v;
          Atomic.incr t.count
        | Some _, Some _ ->
          invalid_arg "Intern.Striped.with_key: key already bound"
        | None, _ -> ());
        r)

  let intern t k mk =
    let i = k.ih land t.mask in
    let m = t.locks.(i) in
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        match T.find_opt t.tables.(i) k with
        | Some v -> (v, false)
        | None ->
          (* the id is drawn under the stripe lock, but from the shared
             counter, so ids are unique across stripes *)
          let id = Atomic.fetch_and_add t.count 1 in
          let v = mk id in
          T.add t.tables.(i) k v;
          (v, true))
end
