(* Canonical-state interning: hash once, then compare by cached hash
   and compact id.

   The model checker's memo table and the fuzzer's coverage tracker
   both bucket canonical states with [Hashtbl.hash_param 150 600] — a
   deep structural walk that a plain [Hashtbl] repeats on every
   [find_opt]/[add] pair (twice per fresh state). The types here make
   the hash part of the key: it is computed exactly once, when the
   key is built, and every later table operation reuses it. Equality
   prefilters on the cached hash before falling back to the caller's
   structural equality, which is the collision backstop — two
   distinct states with equal hashes stay distinct (pinned in
   test_mc.ml).

   [Striped] is the multicore variant: an N-way sharded table with a
   per-stripe mutex, the shared visited set of the parallel checker.
   Insertion order assigns compact ids from one atomic counter, so
   [length] — the checker's [distinct_states] — is an O(1) read of
   the id watermark, with no stripe lock held. *)

type 'a hashed = { ih : int; iv : 'a }

let hashed hash v = { ih = hash v; iv = v }

module type KEY = sig
  type t

  val equal : t -> t -> bool
end

module Table (K : KEY) = Hashtbl.Make (struct
  type t = K.t hashed

  let equal a b = a.ih = b.ih && K.equal a.iv b.iv
  let hash k = k.ih
end)

module Key_set = struct
  (* A set of already-hashed int keys (state hashes, shape hashes):
     identity hashing instead of [Hashtbl.hash]'s mixing pass, and a
     single membership probe per insertion attempt. *)
  module H = Hashtbl.Make (struct
    type t = int

    let equal = Int.equal
    let hash k = k land max_int
  end)

  type t = unit H.t

  let create n = H.create n
  let mem = H.mem

  let add_new t k =
    if H.mem t k then false
    else begin
      H.add t k ();
      true
    end

  let length = H.length
  let iter f t = H.iter (fun k () -> f k) t
end

module Striped (K : KEY) = struct
  module T = Table (K)

  type 'v t = {
    mask : int;
    locks : Mutex.t array;
    tables : 'v T.t array;
    count : int Atomic.t;  (* insertions so far = next compact id *)
    mutable spill_dir : string option;
    spilled : Key_set.t array;
        (* hashes of the keys currently living in each stripe's spill
           segment on disk — the membership prefilter that lets a
           lookup skip the disk when the hash cannot be spilled *)
  }

  let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

  let create ?(stripes = 64) cap =
    let s = pow2 (max 1 (min stripes 4096)) 1 in
    {
      mask = s - 1;
      locks = Array.init s (fun _ -> Mutex.create ());
      tables = Array.init s (fun _ -> T.create (max 16 (cap / s)));
      count = Atomic.make 0;
      spill_dir = None;
      spilled = Array.init s (fun _ -> Key_set.create 1);
    }

  let length t = Atomic.get t.count

  (* ---- disk spill of cold stripes ------------------------------- *)

  (* Invariant per stripe: a key is bound either in the in-memory
     table or in the spill segment, never both, and [spilled.(i)]
     holds exactly the hashes of the on-disk bindings. Spilling
     appends the in-memory bindings to the segment and empties the
     table; any access whose hash the prefilter admits reloads the
     whole segment (exact [K.equal] probing then happens in memory,
     so hash collisions against spilled keys cost a reload, never a
     conflation), after which the segment is deleted. *)

  let spill_version = 1

  let spill_path dir i = Filename.concat dir (Printf.sprintf "stripe_%04d.bin" i)

  let read_spill path : (K.t hashed * 'v) array =
    match Codec.read_file ~path ~version:spill_version with
    | Ok pairs -> pairs
    | Error e ->
      failwith
        (Printf.sprintf "Intern.Striped: unreadable spill segment %s: %s" path
           (Codec.error_to_string e))

  (* caller holds the stripe lock *)
  let reload_locked t i =
    if Key_set.length t.spilled.(i) > 0 then begin
      let dir = Option.get t.spill_dir in
      let path = spill_path dir i in
      Array.iter (fun (k, v) -> T.add t.tables.(i) k v) (read_spill path);
      t.spilled.(i) <- Key_set.create 1;
      try Sys.remove path with Sys_error _ -> ()
    end

  (* caller holds the stripe lock *)
  let maybe_reload_locked t i ih =
    if Key_set.length t.spilled.(i) > 0 && Key_set.mem t.spilled.(i) ih then
      reload_locked t i

  let set_spill_dir t dir = t.spill_dir <- Some dir

  let spill t =
    match t.spill_dir with
    | None -> invalid_arg "Intern.Striped.spill: no spill directory set"
    | Some dir ->
      for i = 0 to t.mask do
        let m = t.locks.(i) in
        Mutex.lock m;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock m)
          (fun () ->
            if T.length t.tables.(i) > 0 then begin
              let mem = T.fold (fun k v acc -> (k, v) :: acc) t.tables.(i) [] in
              let prev =
                if Key_set.length t.spilled.(i) > 0 then
                  Array.to_list (read_spill (spill_path dir i))
                else []
              in
              Codec.write_file ~path:(spill_path dir i) ~version:spill_version
                (Array.of_list (List.rev_append mem prev));
              List.iter
                (fun ((k : K.t hashed), _) ->
                  ignore (Key_set.add_new t.spilled.(i) k.ih : bool))
                mem;
              T.reset t.tables.(i)
            end)
      done

  (* ---- core operations ------------------------------------------ *)

  let with_key t k f =
    let i = k.ih land t.mask in
    let m = t.locks.(i) in
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        maybe_reload_locked t i k.ih;
        let bound = T.find_opt t.tables.(i) k in
        let r, insert = f bound in
        (match (insert, bound) with
        | Some v, None ->
          T.add t.tables.(i) k v;
          Atomic.incr t.count
        | Some _, Some _ ->
          invalid_arg "Intern.Striped.with_key: key already bound"
        | None, _ -> ());
        r)

  let intern t k mk =
    let i = k.ih land t.mask in
    let m = t.locks.(i) in
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        maybe_reload_locked t i k.ih;
        match T.find_opt t.tables.(i) k with
        | Some v -> (v, false)
        | None ->
          (* the id is drawn under the stripe lock, but from the shared
             counter, so ids are unique across stripes *)
          let id = Atomic.fetch_and_add t.count 1 in
          let v = mk id in
          T.add t.tables.(i) k v;
          (v, true))

  (* ---- checkpoint image ----------------------------------------- *)

  let export t =
    let acc = ref [] in
    for i = t.mask downto 0 do
      let m = t.locks.(i) in
      Mutex.lock m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock m)
        (fun () ->
          reload_locked t i;
          acc := T.fold (fun k v l -> (k, v) :: l) t.tables.(i) !acc)
    done;
    Array.of_list !acc

  let import t pairs =
    Array.iter
      (fun (k, v) ->
        with_key t k (fun bound ->
            match bound with
            | Some _ -> invalid_arg "Intern.Striped.import: key already bound"
            | None -> ((), Some v)))
      pairs
end
