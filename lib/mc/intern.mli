(** Canonical-state interning: hash once at key-construction time,
    compare by cached hash (and, in the striped table, by compact id)
    afterwards.

    The checker's memo table and the fuzzer's coverage tracker bucket
    canonical states with a deep structural hash
    ([Hashtbl.hash_param 150 600]); a plain [Hashtbl] recomputes it on
    every [find_opt]/[add] pair. A {!hashed} key carries the hash it
    was built with, so every later operation — bucketing, the
    equality prefilter, stripe selection — reuses the one traversal.
    Structural equality remains the backstop on hash collision: two
    distinct states with equal hashes are never conflated (pinned in
    [test_mc.ml]). *)

type 'a hashed = private { ih : int;  (** the cached hash *) iv : 'a }

val hashed : ('a -> int) -> 'a -> 'a hashed
(** [hashed hash v] computes [hash v] once and packages it with [v]. *)

module type KEY = sig
  type t

  val equal : t -> t -> bool
  (** Structural equality — consulted only when two keys' cached
      hashes already agree. *)
end

module Table (K : KEY) : Hashtbl.S with type key = K.t hashed
(** A single-domain hash table over cached-hash keys: [hash] is the
    cached field (O(1)), [equal] prefilters on it before [K.equal]. *)

module Key_set : sig
  (** A set of already-hashed [int] keys (state hashes, shape
      hashes): identity hashing — the key {e is} the hash — and a
      single-probe [add_new]. The fuzzer's coverage dimensions are
      these sets; per-domain trackers merge with {!iter}. *)

  type t

  val create : int -> t
  val mem : t -> int -> bool

  val add_new : t -> int -> bool
  (** [add_new t k] inserts [k] and returns whether it was new. *)

  val length : t -> int
  val iter : (int -> unit) -> t -> unit
end

module Striped (K : KEY) : sig
  (** An N-way striped hash table with a per-stripe mutex: the shared
      visited set of the parallel model checker. The stripe is chosen
      by the key's cached hash, so a lookup locks exactly one mutex
      and never re-hashes. Insertions draw compact ids from a single
      atomic counter; {!length} is an O(1) read of that id watermark
      (no stripe lock), which is what lets the parallel checker read
      [distinct_states] and enforce [max_states] cheaply. *)

  type 'v t

  val create : ?stripes:int -> int -> 'v t
  (** [create ~stripes cap] makes a table of [stripes] (rounded up to
      a power of two, default 64) shards with a total initial
      capacity of [cap]. *)

  val length : 'v t -> int
  (** Total insertions so far — the compact-id watermark. *)

  val with_key : 'v t -> K.t hashed -> ('v option -> 'r * 'v option) -> 'r
  (** [with_key t k f] runs [f] under [k]'s stripe lock with the
      current binding of [k]. If [f] returns [(r, Some v)] and [k]
      was unbound, [k] is bound to [v] (and the id counter advances);
      returning [Some _] for an already-bound key raises
      [Invalid_argument]. The callback may mutate a found ['v] in
      place — the stripe lock makes that atomic with respect to every
      other access of [k]. It must not re-enter the table. *)

  val intern : 'v t -> K.t hashed -> (int -> 'v) -> 'v * bool
  (** [intern t k mk] finds [k]'s value, or binds it to [mk id] where
      [id] is a fresh compact id; returns the value and whether it
      was inserted. Atomic per key, like {!with_key}. *)

  val set_spill_dir : 'v t -> string -> unit
  (** Enables disk spill: {!spill} writes stripe segments under this
      directory (which must exist). *)

  val spill : 'v t -> unit
  (** Moves every stripe's in-memory bindings into its on-disk
      segment ([Codec.write_file] container), keeping only a
      per-stripe hash prefilter in memory — the memory-bounding lever
      of long campaigns. A later access whose hash the prefilter
      admits reloads that stripe's whole segment (deleting it), and
      the exact [K.equal] probe then runs in memory: a hash collision
      against a spilled key costs a reload, never a conflation.
      {!length} is unaffected — spilled keys stay counted. Raises
      [Invalid_argument] without {!set_spill_dir}, [Failure] on an
      unreadable segment. *)

  val export : 'v t -> (K.t hashed * 'v) array
  (** Every binding, spilled segments included (they are reloaded
      first) — the checkpointable image of the visited set. *)

  val import : 'v t -> (K.t hashed * 'v) array -> unit
  (** Bulk-inserts bindings (each must be fresh), advancing the id
      watermark per key — restoring an {!export} restores {!length},
      which is what makes [max_states] cumulative across resumed
      segments. *)
end
